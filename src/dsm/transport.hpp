// POSIX TCP transport for the DSM runtime: nonblocking loopback sockets,
// length-prefixed frames (wire.hpp), dial with retry/backoff.
//
// Everything here is mechanism, not policy: Listener and Conn are plain
// nonblocking endpoints a poll loop drives; a Conn owns its frame decoder
// and an outbound byte queue, so callers only ever see whole frames.
// Each Conn is owned by exactly one thread — the runtimes never share a
// connection, which is what keeps the node engines lock-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsm/wire.hpp"

namespace lcdc::dsm {

/// Monotonic milliseconds (idle-timeout and backoff bookkeeping).
[[nodiscard]] std::uint64_t monotonicMs();

/// Nonblocking listening socket on 127.0.0.1:`port` (0 picks an ephemeral
/// port — the bound port is readable afterwards, which is how tests avoid
/// fixed-port collisions).
class Listener {
 public:
  explicit Listener(std::uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }
  /// Accept one pending connection (returned fd is nonblocking with
  /// TCP_NODELAY set); -1 when none is pending.
  [[nodiscard]] int acceptOne() const;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

struct DialResult {
  int fd = -1;
  std::uint32_t retries = 0;  ///< connect attempts that failed first
};

/// Blocking connect to 127.0.0.1:`port` with linear backoff — peers come
/// up in arbitrary order, so refused connections retry.  Throws SimError
/// after `maxAttempts` failures.
[[nodiscard]] DialResult dial(std::uint16_t port, std::uint32_t maxAttempts,
                              std::uint32_t backoffMs);

/// A framed connection over a nonblocking fd.  queue() serializes frames
/// into the outbound buffer; the poll loop calls writePending() when the
/// socket is writable and readFrames() when readable.
class Conn {
 public:
  explicit Conn(int fd);
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool wantWrite() const { return outPos_ < out_.size(); }
  [[nodiscard]] std::uint64_t bytesIn() const { return bytesIn_; }
  [[nodiscard]] std::uint64_t bytesOut() const { return bytesOut_; }
  /// Milliseconds since the last byte arrived (idle-timeout input).
  [[nodiscard]] std::uint64_t idleMs() const {
    return monotonicMs() - lastRxMs_;
  }

  void queue(const Frame& f);

  /// Drain the socket's readable bytes, appending every completed frame
  /// to `out`.  Returns false when the peer closed or the socket errored
  /// (a malformed frame throws SimError instead — wire corruption).
  [[nodiscard]] bool readFrames(std::vector<Frame>& out);

  /// Write as much queued output as the socket accepts.  Returns false
  /// on a fatal socket error.
  [[nodiscard]] bool writePending();

  /// Block (poll for writability) until the outbound queue drains — the
  /// shutdown path, where FIN and final replies must actually leave.
  void flushBlocking();

 private:
  int fd_;
  FrameDecoder dec_;
  std::vector<std::byte> out_;
  std::size_t outPos_ = 0;
  std::uint64_t lastRxMs_;
  std::uint64_t bytesIn_ = 0;
  std::uint64_t bytesOut_ = 0;
};

}  // namespace lcdc::dsm
