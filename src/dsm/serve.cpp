#include "dsm/serve.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <poll.h>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "common/expect.hpp"
#include "dsm/transport.hpp"

namespace lcdc::dsm {

namespace {

SystemConfig normalized(const ServeConfig& cfg) {
  LCDC_EXPECT(cfg.nodes >= 1, "serve needs at least one node");
  SystemConfig sys = cfg.system;
  sys.numProcessors = cfg.nodes;
  sys.numDirectories = cfg.nodes;
  LCDC_EXPECT(sys.numBlocks >= 1, "serve needs at least one block");
  return sys;
}

/// Split one generated program into ProgramFrame chunks.
std::vector<ProgramFrame> chunkProgram(const workload::Program& prog,
                                       std::uint32_t chunkSteps) {
  LCDC_EXPECT(chunkSteps >= 1, "chunks need at least one step");
  std::vector<ProgramFrame> chunks;
  std::size_t at = 0;
  std::uint64_t idx = 0;
  do {
    ProgramFrame f;
    f.chunk = idx++;
    const std::size_t n = std::min<std::size_t>(chunkSteps,
                                                prog.steps.size() - at);
    f.steps.assign(prog.steps.begin() + static_cast<std::ptrdiff_t>(at),
                   prog.steps.begin() + static_cast<std::ptrdiff_t>(at + n));
    at += n;
    f.last = at >= prog.steps.size();
    chunks.push_back(std::move(f));
  } while (at < prog.steps.size());
  return chunks;
}

// ---------------------------------------------------------------------------
// Deterministic loopback runtime
// ---------------------------------------------------------------------------

class MemHub;

/// Per-node FrameShip that routes through the hub, remembering the sender.
struct MemShip final : FrameShip {
  MemHub* hub = nullptr;
  std::uint32_t src = 0;
  void ship(const Endpoint& to, const Frame& f) override;
};

/// Single-threaded round-robin hub: node inboxes + an embedded load
/// client, the certifier fed synchronously.  Every queue drains in a
/// fixed order each round, so the whole serve is a deterministic function
/// of (ServeConfig, MemLoadSpec).
class MemHub {
 public:
  MemHub(const ServeConfig& cfg, const MemLoadSpec& load)
      : cfg_(cfg), sys_(normalized(cfg)), load_(load), cert_(cfg.nodes) {
    if (cfg_.archive != nullptr) cert_.attachExtra(*cfg_.archive);
    ships_.resize(cfg_.nodes);
    inbox_.resize(cfg_.nodes);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
      ships_[i].hub = this;
      ships_[i].src = i;
      nodes_.push_back(std::make_unique<NodeEngine>(
          i, sys_, ships_[i], cfg_.heartbeatEveryPumps));
    }
  }

  void route(std::uint32_t src, const Endpoint& to, const Frame& f) {
    switch (to.kind) {
      case Endpoint::Kind::Certifier:
        if (const auto* e = std::get_if<EventFrame>(&f)) {
          cert_.onEvent(src, *e);
        } else if (const auto* hb = std::get_if<HeartbeatFrame>(&f)) {
          cert_.onHeartbeat(src, *hb);
        } else {
          cert_.onFin(src, std::get<FinFrame>(f));
        }
        break;
      case Endpoint::Kind::Peer:
        inbox_[to.id].push_back(std::get<MsgFrame>(f));
        break;
      case Endpoint::Kind::Client:
        chunkDones_.emplace_back(src, std::get<ChunkDoneFrame>(f));
        break;
    }
  }

  ServeResult run() {
    const std::uint64_t t0 = monotonicMs();

    HelloFrame hello;
    hello.role = Role::Events;
    hello.sender = 0;
    hello.nodes = cfg_.nodes;
    hello.config = sys_;
    cert_.onHello(hello);

    // Embedded load: generate every node's program up front, feed it in
    // windowed chunks exactly as `lcdc load` would.
    workload::WorkloadConfig wcfg;
    wcfg.seed = load_.seed;
    wcfg.numProcessors = sys_.numProcessors;
    wcfg.numBlocks = sys_.numBlocks;
    wcfg.wordsPerBlock = sys_.proto.wordsPerBlock;
    wcfg.opsPerProcessor = std::max<std::uint64_t>(
        1, load_.totalOps / cfg_.nodes);
    const std::vector<workload::Program> programs =
        workload::make(load_.kind, wcfg);
    std::vector<std::vector<ProgramFrame>> chunks(cfg_.nodes);
    std::vector<std::size_t> sent(cfg_.nodes, 0);
    for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
      chunks[i] = chunkProgram(programs[i], load_.chunkSteps);
      const std::size_t w = std::min<std::size_t>(
          std::max<std::uint32_t>(1, load_.window), chunks[i].size());
      for (std::size_t k = 0; k < w; ++k) {
        nodes_[i]->onFrame(Frame{chunks[i][k]});
        sent[i] += 1;
      }
    }

    // Round-robin until every node finished its load and drained.
    std::uint64_t lastOps = 0;
    std::uint64_t idleRounds = 0;
    for (;;) {
      bool moved = false;
      for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        std::deque<MsgFrame>& in = inbox_[i];
        while (!in.empty()) {
          MsgFrame m = std::move(in.front());
          in.pop_front();
          nodes_[i]->onFrame(Frame{std::move(m)});
          moved = true;
        }
        nodes_[i]->pump();
      }
      while (!chunkDones_.empty()) {
        const auto [node, done] = std::move(chunkDones_.front());
        chunkDones_.pop_front();
        moved = true;
        if (sent[node] < chunks[node].size()) {
          nodes_[node]->onFrame(Frame{chunks[node][sent[node]]});
          sent[node] += 1;
        }
      }

      bool allIdle = true;
      std::uint64_t ops = 0;
      for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
        ops += nodes_[i]->stats().opsBound;
        if (!nodes_[i]->loadDone() || !nodes_[i]->quiet() ||
            !inbox_[i].empty()) {
          allIdle = false;
        }
      }
      if (allIdle) break;
      if (moved || ops != lastOps) {
        lastOps = ops;
        idleRounds = 0;
      } else if (++idleRounds > 5'000'000) {
        throw SimError("mem serve made no progress (protocol stalled)");
      }
    }

    for (auto& n : nodes_) n->finishEvents();

    ServeResult r;
    for (auto& n : nodes_) {
      r.nodeStats.push_back(n->stats());
      r.opsBound += n->stats().opsBound;
    }
    r.report = cert_.finish(r.opsBound);
    r.certStats = cert_.stats();
    r.seconds =
        static_cast<double>(monotonicMs() - t0) / 1000.0;
    return r;
  }

 private:
  ServeConfig cfg_;
  SystemConfig sys_;
  MemLoadSpec load_;
  CertifierEngine cert_;
  std::vector<MemShip> ships_;
  std::vector<std::unique_ptr<NodeEngine>> nodes_;
  std::vector<std::deque<MsgFrame>> inbox_;
  std::deque<std::pair<std::uint32_t, ChunkDoneFrame>> chunkDones_;
};

void MemShip::ship(const Endpoint& to, const Frame& f) {
  hub->route(src, to, f);
}

// ---------------------------------------------------------------------------
// TCP runtime
// ---------------------------------------------------------------------------

/// Supervisor -> worker-thread control plane (monotone flags).
struct Control {
  std::atomic<bool> stopNewWork{false};  ///< abandon queued chunks
  std::atomic<bool> sendFin{false};      ///< FIN once locally quiet
  std::atomic<bool> forceFin{false};     ///< FIN even if not quiet (drain timed out)
  std::atomic<bool> exitNow{false};
};

/// Worker-thread -> supervisor state (published every loop iteration).
struct NodeShared {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> recv{0};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> quiet{false};
  std::atomic<bool> loadDone{false};
  std::atomic<bool> finSent{false};
  std::atomic<bool> failed{false};
};

/// An accepted connection plus what its HELLO told us.
struct Accepted {
  std::unique_ptr<Conn> conn;
  Role role = Role::Peer;
  bool helloSeen = false;
};

struct TcpShip final : FrameShip {
  std::vector<std::unique_ptr<Conn>>* peerOut = nullptr;  // by node id
  Conn* certConn = nullptr;
  Conn** session = nullptr;  // active load client, may be null
  void ship(const Endpoint& to, const Frame& f) override {
    switch (to.kind) {
      case Endpoint::Kind::Peer:
        (*peerOut)[to.id]->queue(f);
        break;
      case Endpoint::Kind::Certifier:
        certConn->queue(f);
        break;
      case Endpoint::Kind::Client:
        if (*session != nullptr) (*session)->queue(f);
        break;
    }
  }
};

void nodeThread(std::uint32_t i, const ServeConfig& cfg,
                const SystemConfig& sys, const ServePorts& ports,
                Listener& listener, Control& ctl, NodeShared& shared,
                std::atomic<std::uint64_t>& dialRetries,
                NodeStats& statsOut, std::string& errorOut) {
  try {
    const std::uint32_t n = cfg.nodes;

    const DialResult certDial = dial(ports.cert, 200, 5);
    dialRetries.fetch_add(certDial.retries, std::memory_order_relaxed);
    auto certConn = std::make_unique<Conn>(certDial.fd);
    HelloFrame hello;
    hello.role = Role::Events;
    hello.sender = i;
    hello.nodes = n;
    hello.config = sys;
    certConn->queue(Frame{hello});

    std::vector<std::unique_ptr<Conn>> peerOut(n);
    for (std::uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const DialResult d = dial(ports.node[j], 200, 5);
      dialRetries.fetch_add(d.retries, std::memory_order_relaxed);
      peerOut[j] = std::make_unique<Conn>(d.fd);
      HelloFrame ph = hello;
      ph.role = Role::Peer;
      peerOut[j]->queue(Frame{ph});
    }

    Conn* session = nullptr;
    TcpShip ship;
    ship.peerOut = &peerOut;
    ship.certConn = certConn.get();
    ship.session = &session;
    NodeEngine engine(i, sys, ship, cfg.heartbeatEveryPumps);

    std::vector<Accepted> accepted;
    std::vector<pollfd> pfds;
    std::vector<Frame> frames;
    bool abandoned = false;
    bool finSent = false;

    while (!ctl.exitNow.load(std::memory_order_relaxed)) {
      // Poll for readability; writes are attempted every iteration.
      pfds.clear();
      pfds.push_back(pollfd{listener.fd(), POLLIN, 0});
      for (const Accepted& a : accepted) {
        pfds.push_back(pollfd{a.conn->fd(), POLLIN, 0});
      }
      const bool busy = !engine.quiet() || certConn->wantWrite();
      (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                   busy ? 0 : 2);

      for (int fd = listener.acceptOne(); fd >= 0;
           fd = listener.acceptOne()) {
        Accepted a;
        a.conn = std::make_unique<Conn>(fd);
        accepted.push_back(std::move(a));
      }

      for (std::size_t c = 0; c < accepted.size();) {
        Accepted& a = accepted[c];
        frames.clear();
        const bool alive = a.conn->readFrames(frames);
        for (Frame& f : frames) {
          if (const auto* h = std::get_if<HelloFrame>(&f)) {
            LCDC_EXPECT(h->version == kWireVersion, "wire version mismatch");
            a.helloSeen = true;
            a.role = h->role;
            if (h->role == Role::Client) {
              // Reply so the client learns the topology and config.
              HelloFrame reply;
              reply.role = Role::Peer;
              reply.sender = i;
              reply.nodes = n;
              reply.config = sys;
              a.conn->queue(Frame{reply});
            }
          } else if (std::holds_alternative<MsgFrame>(f)) {
            engine.onFrame(f);
          } else if (std::holds_alternative<ProgramFrame>(f)) {
            if (!ctl.stopNewWork.load(std::memory_order_relaxed)) {
              session = a.conn.get();
              engine.onFrame(f);
            }
          } else {
            throw SimError("unexpected frame kind on a node connection");
          }
        }
        // Reap: dead peers, or clients (outside the active session) idle
        // past the timeout.
        const bool idleClient =
            a.helloSeen && a.role == Role::Client &&
            a.conn.get() != session &&
            a.conn->idleMs() > cfg.idleTimeoutMs;
        const bool neverSpoke =
            !a.helloSeen && a.conn->idleMs() > cfg.idleTimeoutMs;
        if (!alive || idleClient || neverSpoke) {
          if (a.conn.get() == session) session = nullptr;
          accepted.erase(accepted.begin() +
                         static_cast<std::ptrdiff_t>(c));
          continue;
        }
        ++c;
      }

      engine.pump();

      if (ctl.stopNewWork.load(std::memory_order_relaxed) && !abandoned) {
        engine.abandonQueuedChunks();
        abandoned = true;
      }
      if (!finSent && ctl.sendFin.load(std::memory_order_relaxed) &&
          (engine.quiet() || ctl.forceFin.load(std::memory_order_relaxed))) {
        engine.finishEvents();
        finSent = true;
      }

      for (std::uint32_t j = 0; j < n; ++j) {
        if (peerOut[j] && peerOut[j]->wantWrite() &&
            !peerOut[j]->writePending()) {
          throw SimError("peer connection failed");
        }
      }
      if (certConn->wantWrite() && !certConn->writePending()) {
        throw SimError("certifier connection failed");
      }
      for (Accepted& a : accepted) {
        if (a.conn->wantWrite() && !a.conn->writePending()) {
          // Client went away mid-reply; reaped next iteration.
        }
      }
      if (finSent && !shared.finSent.load(std::memory_order_relaxed) &&
          !certConn->wantWrite()) {
        shared.finSent.store(true, std::memory_order_release);
      }

      shared.sent.store(engine.stats().msgsSent, std::memory_order_relaxed);
      shared.recv.store(engine.stats().msgsReceived,
                        std::memory_order_relaxed);
      shared.ops.store(engine.stats().opsBound, std::memory_order_relaxed);
      shared.quiet.store(engine.quiet(), std::memory_order_relaxed);
      shared.loadDone.store(engine.loadDone(), std::memory_order_relaxed);
    }

    statsOut = engine.stats();
  } catch (const std::exception& e) {
    errorOut = e.what();
    shared.failed.store(true, std::memory_order_release);
  }
}

void certifierThread(std::uint32_t nodes, Listener& listener,
                     CertifierEngine& cert, Control& ctl,
                     std::atomic<bool>& allFins,
                     std::atomic<bool>& failed, std::string& errorOut) {
  try {
    std::vector<Accepted> conns;
    std::vector<std::uint32_t> connNode;  // parallel to conns; nodes_ = none
    std::vector<pollfd> pfds;
    std::vector<Frame> frames;
    const std::uint32_t kNone = ~std::uint32_t{0};

    while (!ctl.exitNow.load(std::memory_order_relaxed) &&
           !cert.allFinished()) {
      pfds.clear();
      pfds.push_back(pollfd{listener.fd(), POLLIN, 0});
      for (const Accepted& a : conns) {
        pfds.push_back(pollfd{a.conn->fd(), POLLIN, 0});
      }
      (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 2);

      for (int fd = listener.acceptOne(); fd >= 0;
           fd = listener.acceptOne()) {
        Accepted a;
        a.conn = std::make_unique<Conn>(fd);
        conns.push_back(std::move(a));
        connNode.push_back(kNone);
      }

      for (std::size_t c = 0; c < conns.size();) {
        frames.clear();
        const bool alive = conns[c].conn->readFrames(frames);
        for (const Frame& f : frames) {
          if (const auto* h = std::get_if<HelloFrame>(&f)) {
            LCDC_EXPECT(h->role == Role::Events,
                        "non-event connection at the certifier");
            LCDC_EXPECT(h->sender < nodes, "event stream from unknown node");
            connNode[c] = h->sender;
            cert.onHello(*h);
          } else if (const auto* e = std::get_if<EventFrame>(&f)) {
            LCDC_EXPECT(connNode[c] != kNone, "EVENT before HELLO");
            cert.onEvent(connNode[c], *e);
          } else if (const auto* hb = std::get_if<HeartbeatFrame>(&f)) {
            LCDC_EXPECT(connNode[c] != kNone, "HEARTBEAT before HELLO");
            cert.onHeartbeat(connNode[c], *hb);
          } else if (const auto* fin = std::get_if<FinFrame>(&f)) {
            LCDC_EXPECT(connNode[c] != kNone, "FIN before HELLO");
            cert.onFin(connNode[c], *fin);
          } else {
            throw SimError("unexpected frame kind at the certifier");
          }
        }
        if (!alive) {
          conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(c));
          connNode.erase(connNode.begin() + static_cast<std::ptrdiff_t>(c));
          continue;
        }
        ++c;
      }
    }
    if (cert.allFinished()) allFins.store(true, std::memory_order_release);
  } catch (const std::exception& e) {
    errorOut = e.what();
    failed.store(true, std::memory_order_release);
  }
}

}  // namespace

ServeResult serveMem(const ServeConfig& cfg, const MemLoadSpec& load) {
  MemHub hub(cfg, load);
  return hub.run();
}

ServeResult serveTcp(const ServeConfig& cfg,
                     const volatile std::sig_atomic_t* stop,
                     ServePorts* portsOut) {
  const std::uint64_t t0 = monotonicMs();
  const SystemConfig sys = normalized(cfg);
  const std::uint32_t n = cfg.nodes;

  // Bind every listener up front so (a) ephemeral ports are known before
  // any thread dials and (b) peers can dial in any order.
  Listener certListener(cfg.port);
  std::vector<std::unique_ptr<Listener>> nodeListeners;
  ServePorts ports;
  ports.cert = certListener.port();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t p =
        cfg.port == 0 ? std::uint16_t{0}
                      : static_cast<std::uint16_t>(cfg.port + 1 + i);
    nodeListeners.push_back(std::make_unique<Listener>(p));
    ports.node.push_back(nodeListeners.back()->port());
  }
  if (portsOut != nullptr) *portsOut = ports;
  if (cfg.portsReady != nullptr) {
    cfg.portsReady->store(true, std::memory_order_release);
  }

  CertifierEngine cert(n);
  if (cfg.archive != nullptr) cert.attachExtra(*cfg.archive);

  Control ctl;
  std::deque<NodeShared> shared(n);
  std::vector<NodeStats> nodeStats(n);
  std::vector<std::string> errors(n + 1);
  std::atomic<std::uint64_t> dialRetries{0};
  std::atomic<bool> certAllFins{false};
  std::atomic<bool> certFailed{false};

  std::vector<std::thread> threads;
  threads.emplace_back(certifierThread, n, std::ref(certListener),
                       std::ref(cert), std::ref(ctl), std::ref(certAllFins),
                       std::ref(certFailed), std::ref(errors[n]));
  for (std::uint32_t i = 0; i < n; ++i) {
    threads.emplace_back(nodeThread, i, std::cref(cfg), std::cref(sys),
                         std::cref(ports), std::ref(*nodeListeners[i]),
                         std::ref(ctl), std::ref(shared[i]),
                         std::ref(dialRetries), std::ref(nodeStats[i]),
                         std::ref(errors[i]));
  }

  const auto anyFailed = [&] {
    if (certFailed.load(std::memory_order_acquire)) return true;
    for (const NodeShared& s : shared) {
      if (s.failed.load(std::memory_order_acquire)) return true;
    }
    return false;
  };
  const auto quietAndBalanced = [&] {
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    for (const NodeShared& s : shared) {
      if (!s.quiet.load(std::memory_order_relaxed)) return false;
      sent += s.sent.load(std::memory_order_relaxed);
      recv += s.recv.load(std::memory_order_relaxed);
    }
    return sent == recv;
  };
  const auto allLoadDone = [&] {
    for (const NodeShared& s : shared) {
      if (!s.loadDone.load(std::memory_order_relaxed)) return false;
    }
    return true;
  };
  const auto sleepMs = [](std::uint64_t ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
  const auto joinAll = [&] {
    ctl.exitNow.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
  };
  const auto failIfBroken = [&] {
    if (!anyFailed()) return;
    joinAll();
    std::string detail = "dsm serve failed:";
    for (const std::string& e : errors) {
      if (!e.empty()) detail += " [" + e + "]";
    }
    throw SimError(detail);
  };

  // Serve until the session completes (--once), SIGINT, or a failure.
  for (;;) {
    sleepMs(5);
    failIfBroken();
    if (stop != nullptr && *stop != 0) break;
    if (cfg.once && allLoadDone() && quietAndBalanced()) {
      sleepMs(10);
      if (allLoadDone() && quietAndBalanced()) break;  // stable sample
    }
  }

  // Graceful shutdown: drop queued work, drain, FIN, certify.
  ServeResult r;
  ctl.stopNewWork.store(true, std::memory_order_release);
  const std::uint64_t drainStart = monotonicMs();
  while (!quietAndBalanced()) {
    failIfBroken();
    if (monotonicMs() - drainStart > cfg.drainTimeoutMs) {
      r.drained = false;  // verdict may contain shutdown artifacts
      break;
    }
    sleepMs(5);
  }
  if (quietAndBalanced()) {
    sleepMs(10);
    if (!quietAndBalanced()) r.drained = false;
  }
  ctl.sendFin.store(true, std::memory_order_release);
  if (!r.drained) ctl.forceFin.store(true, std::memory_order_release);
  const std::uint64_t finStart = monotonicMs();
  for (;;) {
    failIfBroken();
    bool all = true;
    for (const NodeShared& s : shared) {
      if (!s.finSent.load(std::memory_order_acquire)) all = false;
    }
    if (all) break;
    if (monotonicMs() - finStart > cfg.drainTimeoutMs) {
      ctl.forceFin.store(true, std::memory_order_release);
      r.drained = false;
    }
    sleepMs(2);
  }
  const std::uint64_t certStart = monotonicMs();
  while (!certAllFins.load(std::memory_order_acquire)) {
    failIfBroken();
    if (monotonicMs() - certStart > 30'000) {
      joinAll();
      throw SimError("certifier did not receive every FIN");
    }
    sleepMs(2);
  }
  joinAll();
  failIfBroken();

  r.nodeStats = std::move(nodeStats);
  for (const NodeStats& s : r.nodeStats) r.opsBound += s.opsBound;
  r.report = cert.finish(r.opsBound);
  r.certStats = cert.stats();
  r.dialRetries = dialRetries.load(std::memory_order_relaxed);
  r.seconds = static_cast<double>(monotonicMs() - t0) / 1000.0;
  return r;
}

}  // namespace lcdc::dsm
