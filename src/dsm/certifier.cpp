#include "dsm/certifier.hpp"

#include <algorithm>

#include "backend/backend.hpp"
#include "common/expect.hpp"
#include "trace/codec.hpp"
#include "verify/checkers.hpp"

namespace lcdc::dsm {

CertifierEngine::CertifierEngine(std::uint32_t nodes)
    : nodes_(nodes), streams_(nodes) {
  LCDC_EXPECT(nodes_ >= 1, "certifier needs at least one stream");
}

CertifierEngine::~CertifierEngine() = default;

void CertifierEngine::attachExtra(proto::EventSink& sink) {
  LCDC_EXPECT(!configured(), "attachExtra must precede the first hello");
  extras_.push_back(&sink);
}

void CertifierEngine::onHello(const HelloFrame& h) {
  LCDC_EXPECT(h.version == kWireVersion, "wire version mismatch");
  LCDC_EXPECT(h.nodes == nodes_, "hello announces a different topology");
  if (configured()) {
    LCDC_EXPECT(h.config.numProcessors == config_.numProcessors &&
                    h.config.numBlocks == config_.numBlocks &&
                    h.config.proto.wordsPerBlock == config_.proto.wordsPerBlock &&
                    h.config.storeBufferDepth == config_.storeBufferDepth,
                "hello announces a different system configuration");
    return;
  }
  config_ = h.config;
  checkers_ = std::make_unique<verify::StreamCheckerSet>(
      proto::verifyConfigFor(config_));
  tee_.clear();
  tee_.attach(*checkers_);
  for (proto::EventSink* s : extras_) tee_.attach(*s);
  tee_.onRunBegin(config_);
}

void CertifierEngine::dispatch(const EventFrame& f) {
  ++stats_.eventsMerged;
  trace::applyEvent(f.event, tee_);
  if ((stats_.eventsMerged & 0xFFF) == 0) {
    stats_.checkerBytes_ =
        std::max(stats_.checkerBytes_, checkers_->memoryFootprint());
  }
}

void CertifierEngine::release() {
  if (!configured()) return;
  for (;;) {
    std::size_t best = streams_.size();
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (streams_[i].q.empty()) continue;
      if (best == streams_.size()) {
        best = i;
        continue;
      }
      const EventFrame& a = streams_[i].q.front();
      const EventFrame& b = streams_[best].q.front();
      // (clock, node, seq) — node index breaks clock ties deterministically.
      if (a.clock < b.clock) best = i;
    }
    if (best == streams_.size()) return;
    const EventFrame& head = streams_[best].q.front();
    for (std::size_t j = 0; j < streams_.size(); ++j) {
      if (j == best) continue;
      const Stream& s = streams_[j];
      if (!s.finished && s.q.empty() && s.watermark < head.clock) {
        return;  // stream j might still produce an earlier event
      }
    }
    dispatch(head);
    streams_[best].q.pop_front();
  }
}

std::size_t CertifierEngine::lag() const {
  std::size_t n = 0;
  for (const Stream& s : streams_) n += s.q.size();
  return n;
}

void CertifierEngine::onEvent(std::uint32_t node, const EventFrame& f) {
  LCDC_EXPECT(node < nodes_, "event from unknown node");
  Stream& s = streams_[node];
  LCDC_EXPECT(!s.finished, "event after FIN");
  LCDC_EXPECT(f.seq == s.nextSeq, "event stream gap (lost frames)");
  s.nextSeq += 1;
  LCDC_EXPECT(f.clock > s.watermark, "event clock not monotone");
  s.watermark = f.clock;
  s.q.push_back(f);
  stats_.peakLag = std::max(stats_.peakLag, lag());
  release();
}

void CertifierEngine::onHeartbeat(std::uint32_t node, const HeartbeatFrame& f) {
  LCDC_EXPECT(node < nodes_, "heartbeat from unknown node");
  Stream& s = streams_[node];
  if (f.clock > s.watermark) s.watermark = f.clock;
  ++stats_.heartbeats;
  release();
}

void CertifierEngine::onFin(std::uint32_t node, const FinFrame& f) {
  LCDC_EXPECT(node < nodes_, "FIN from unknown node");
  Stream& s = streams_[node];
  LCDC_EXPECT(!s.finished, "duplicate FIN");
  LCDC_EXPECT(f.events == s.nextSeq,
              "FIN event count disagrees with received events (lost frames)");
  s.finished = true;
  if (f.clock > s.watermark) s.watermark = f.clock;
  finCount_ += 1;
  release();
}

verify::CheckReport CertifierEngine::finish(std::uint64_t opsBound) {
  LCDC_EXPECT(configured(), "certifier never received a hello");
  LCDC_EXPECT(allFinished(), "finish before every stream sent FIN");
  release();
  LCDC_EXPECT(lag() == 0, "merge queues not drained after all FINs");
  checkers_->finish();
  RunResult result;
  result.outcome = RunResult::Outcome::Quiescent;
  result.eventsProcessed = stats_.eventsMerged;
  result.opsBound = opsBound;
  tee_.onRunEnd(result);
  stats_.checkerBytes_ =
      std::max(stats_.checkerBytes_, checkers_->memoryFootprint());
  return checkers_->report();
}

}  // namespace lcdc::dsm
