#include "dsm/wire.hpp"

#include <cstring>
#include <string>

#include "common/expect.hpp"

namespace lcdc::dsm {

namespace {

namespace codec = trace::codec;

enum class FrameType : std::uint8_t {
  Hello = 1,
  Msg = 2,
  Event = 3,
  Heartbeat = 4,
  Fin = 5,
  Program = 6,
  ChunkDone = 7,
};

void putSteps(std::vector<std::byte>& out,
              const std::vector<workload::Step>& steps) {
  codec::putU64(out, steps.size());
  for (const workload::Step& s : steps) {
    codec::putU64(out, static_cast<std::uint8_t>(s.kind));
    codec::putU64(out, s.block);
    codec::putU64(out, s.word);
    codec::putU64(out, s.storeValue);
  }
}

std::vector<workload::Step> getSteps(codec::Reader& r) {
  std::vector<workload::Step> steps(r.u64());
  for (workload::Step& s : steps) {
    s.kind = static_cast<workload::StepKind>(r.u8());
    s.block = r.u32();
    s.word = r.u32();
    s.storeValue = r.u64();
  }
  return steps;
}

void encodePayload(const Frame& f, std::vector<std::byte>& out) {
  if (const auto* h = std::get_if<HelloFrame>(&f)) {
    out.push_back(static_cast<std::byte>(FrameType::Hello));
    codec::putU64(out, h->version);
    codec::putU64(out, static_cast<std::uint8_t>(h->role));
    codec::putU64(out, h->sender);
    codec::putU64(out, h->nodes);
    codec::putConfig(out, h->config);
  } else if (const auto* m = std::get_if<MsgFrame>(&f)) {
    out.push_back(static_cast<std::byte>(FrameType::Msg));
    codec::putU64(out, m->clock);
    codec::putU64(out, m->dst);
    codec::putMessage(out, m->msg);
  } else if (const auto* e = std::get_if<EventFrame>(&f)) {
    out.push_back(static_cast<std::byte>(FrameType::Event));
    codec::putU64(out, e->clock);
    codec::putU64(out, e->seq);
    codec::putEvent(out, e->event);
  } else if (const auto* hb = std::get_if<HeartbeatFrame>(&f)) {
    out.push_back(static_cast<std::byte>(FrameType::Heartbeat));
    codec::putU64(out, hb->clock);
  } else if (const auto* fin = std::get_if<FinFrame>(&f)) {
    out.push_back(static_cast<std::byte>(FrameType::Fin));
    codec::putU64(out, fin->clock);
    codec::putU64(out, fin->events);
  } else if (const auto* p = std::get_if<ProgramFrame>(&f)) {
    out.push_back(static_cast<std::byte>(FrameType::Program));
    codec::putU64(out, p->chunk);
    codec::putU64(out, p->last ? 1 : 0);
    putSteps(out, p->steps);
  } else {
    const auto& c = std::get<ChunkDoneFrame>(f);
    out.push_back(static_cast<std::byte>(FrameType::ChunkDone));
    codec::putU64(out, c.chunk);
    codec::putU64(out, c.opsBound);
  }
}

Frame decodePayload(const std::byte* data, std::size_t len) {
  if (len < 1) throw SimError("wire frame with empty payload");
  codec::Reader r{data + 1, len - 1};
  Frame f;
  switch (static_cast<FrameType>(std::to_integer<std::uint8_t>(data[0]))) {
    case FrameType::Hello: {
      HelloFrame h;
      h.version = r.u64();
      h.role = static_cast<Role>(r.u8());
      h.sender = r.u32();
      h.nodes = r.u32();
      h.config = codec::getConfig(r);
      f = h;
      break;
    }
    case FrameType::Msg: {
      MsgFrame m;
      m.clock = r.u64();
      m.dst = r.u32();
      m.msg = codec::getMessage(r);
      f = std::move(m);
      break;
    }
    case FrameType::Event: {
      EventFrame e;
      e.clock = r.u64();
      e.seq = r.u64();
      e.event = codec::getEvent(r);
      f = std::move(e);
      break;
    }
    case FrameType::Heartbeat: {
      HeartbeatFrame hb;
      hb.clock = r.u64();
      f = hb;
      break;
    }
    case FrameType::Fin: {
      FinFrame fin;
      fin.clock = r.u64();
      fin.events = r.u64();
      f = fin;
      break;
    }
    case FrameType::Program: {
      ProgramFrame p;
      p.chunk = r.u64();
      p.last = r.b();
      p.steps = getSteps(r);
      f = std::move(p);
      break;
    }
    case FrameType::ChunkDone: {
      ChunkDoneFrame c;
      c.chunk = r.u64();
      c.opsBound = r.u64();
      f = c;
      break;
    }
    default:
      throw SimError("unknown wire frame type " +
                     std::to_string(std::to_integer<std::uint8_t>(data[0])));
  }
  if (!r.done()) throw SimError("wire frame has trailing bytes");
  return f;
}

}  // namespace

void encodeFrame(const Frame& f, std::vector<std::byte>& out) {
  const std::size_t lenPos = out.size();
  out.resize(out.size() + 4);  // length prefix back-patched below
  const std::size_t payloadStart = out.size();
  encodePayload(f, out);
  const std::size_t payload = out.size() - payloadStart;
  LCDC_EXPECT(payload <= FrameDecoder::kMaxFrameBytes,
              "wire frame exceeds the size limit");
  const auto len = static_cast<std::uint32_t>(payload);
  out[lenPos + 0] = static_cast<std::byte>(len & 0xFF);
  out[lenPos + 1] = static_cast<std::byte>((len >> 8) & 0xFF);
  out[lenPos + 2] = static_cast<std::byte>((len >> 16) & 0xFF);
  out[lenPos + 3] = static_cast<std::byte>((len >> 24) & 0xFF);
}

void FrameDecoder::feed(const std::byte* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so the buffer stays
  // bounded by the live tail instead of the whole connection history.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
  if (buf_.size() - pos_ < 4) return std::nullopt;
  const std::uint32_t len =
      std::to_integer<std::uint32_t>(buf_[pos_]) |
      (std::to_integer<std::uint32_t>(buf_[pos_ + 1]) << 8) |
      (std::to_integer<std::uint32_t>(buf_[pos_ + 2]) << 16) |
      (std::to_integer<std::uint32_t>(buf_[pos_ + 3]) << 24);
  // A hostile or corrupt peer controls this length word, so an oversized
  // frame is a connection-fatal input error, not a programmer invariant.
  if (len > kMaxFrameBytes) {
    throw SimError("wire frame exceeds the size limit");
  }
  if (buf_.size() - pos_ - 4 < len) return std::nullopt;
  Frame f = decodePayload(buf_.data() + pos_ + 4, len);
  pos_ += 4 + len;
  return f;
}

}  // namespace lcdc::dsm
