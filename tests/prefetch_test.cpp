// Tests for the Section 2.3 decoupling: coherence requests generated ahead
// of processor events (prefetching).  Correctness must be untouched — a
// prefetch only changes *when* a transaction happens, never what the
// Lamport order proves.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace lcdc {
namespace {

using workload::load;
using workload::prefetchExclusive;
using workload::prefetchShared;
using workload::store;

TEST(Prefetch, HintBringsTheLineBeforeTheDemandAccess) {
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 4;
  cfg.seed = 3;
  trace::Trace trace;
  sim::System sys(cfg, trace);
  // Prefetch block 2, touch other blocks, then load block 2: by the time
  // the demand load runs the line should already be resident, and the load
  // binds to the *prefetch's* transaction.
  sys.setProgram(0, {{prefetchShared(2), load(0, 0), load(1, 0), load(2, 0)}});
  sys.setProgram(1, {{}});
  ASSERT_TRUE(sys.run().ok());
  EXPECT_EQ(sys.processor(0).stats().prefetchesIssued, 1u);

  const proto::OpRecord* loadOf2 = nullptr;
  for (const auto& op : trace.operations()) {
    if (op.block == 2) loadOf2 = &op;
  }
  ASSERT_NE(loadOf2, nullptr);
  // Block 2's only transaction is the prefetch's Get-Shared; the load is
  // bound to it even though no request was issued at the load itself.
  const proto::TxnInfo* txn = trace.findTxn(loadOf2->boundTxn);
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(txn->kind, TxnKind::GetS_Idle);
  EXPECT_TRUE(
      verify::checkAll(trace, verify::VerifyConfig{2}).ok());
}

TEST(Prefetch, ExclusiveHintUpgradesASharedLine) {
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  cfg.seed = 4;
  trace::Trace trace;
  sim::System sys(cfg, trace);
  sys.setProgram(0, {{load(0, 0), prefetchExclusive(0), load(1, 0),
                      store(0, 0, 0x77)}});
  sys.setProgram(1, {{}});
  ASSERT_TRUE(sys.run().ok());

  proto::DirStats d = sys.aggregateDirStats();
  EXPECT_EQ(d.txnByKind[static_cast<std::uint8_t>(TxnKind::Upg_Shared)], 1u);
  EXPECT_TRUE(verify::checkAll(trace, verify::VerifyConfig{2}).ok());
}

TEST(Prefetch, SatisfiedAndBlockedHintsAreDropped) {
  SystemConfig cfg;
  cfg.numProcessors = 1;
  cfg.numDirectories = 1;
  cfg.numBlocks = 1;
  cfg.seed = 5;
  trace::Trace trace;
  sim::System sys(cfg, trace);
  // The second hint finds the line already read-only (satisfied), the
  // third finds it read-write: both must be dropped without traffic.
  sys.setProgram(0, {{prefetchShared(0), prefetchShared(0), load(0, 0),
                      store(0, 0, 1), prefetchShared(0)}});
  ASSERT_TRUE(sys.run().ok());
  EXPECT_EQ(sys.aggregateDirStats().requests, 2u);  // GetS + Upgrade only
  EXPECT_TRUE(verify::checkAll(trace, verify::VerifyConfig{1}).ok());
}

TEST(Prefetch, HintedWorkloadsStayVerifiedUnderContention) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 8;
    cfg.cacheCapacity = 3;
    cfg.seed = seed;
    auto w = test::workloadFor(cfg, 500, seed * 7 + 1);
    w.storePercent = 45;
    w.evictPercent = 10;
    auto programs = workload::addPrefetchHints(
        workload::hotBlock(w, 80, 3), /*lookahead=*/6, /*percent=*/30,
        seed);
    const test::RunOutput out = test::runVerified(cfg, programs);
    ASSERT_TRUE(out.result.ok())
        << "seed " << seed << ": " << toString(out.result.outcome);
    EXPECT_TRUE(out.report.ok()) << "seed " << seed << ": "
                                 << out.report.summary();
    std::uint64_t prefetches = 0;
    // (stats live on processors; fetch through the cache stats instead)
    EXPECT_GT(out.cacheStats.requestsIssued, 0u);
    (void)prefetches;
  }
}

}  // namespace
}  // namespace lcdc
