// The streaming observer pipeline itself: TeeSink fan-out, lifecycle
// hooks, StatsObserver counters, the online CoverageObserver (including
// conversion rebucketing) and the StreamCheckerSet's bounded state.  The
// streaming-equals-batch property has its own suite (stream_equiv_test).
#include <gtest/gtest.h>

#include <vector>

#include "backend/backend.hpp"
#include "campaign/coverage.hpp"
#include "proto/observer.hpp"
#include "testutil.hpp"
#include "verify/stream.hpp"

namespace lcdc {
namespace {

/// A contended run that exercises conversions, evictions and NACK paths.
struct LiveRun {
  SystemConfig cfg;
  std::vector<workload::Program> programs;
};

LiveRun contendedRun(std::uint64_t seed, std::uint64_t ops = 800) {
  LiveRun r;
  r.cfg.numProcessors = 6;
  r.cfg.numDirectories = 2;
  r.cfg.numBlocks = 6;
  r.cfg.cacheCapacity = 2;
  r.cfg.seed = seed;
  auto w = test::workloadFor(r.cfg, ops, seed * 31 + 7);
  w.storePercent = 50;
  w.evictPercent = 12;
  r.programs = workload::hotBlock(w, 85, 3);
  return r;
}

sim::RunResult runThrough(const LiveRun& r, proto::EventSink& sink) {
  sim::System sys(r.cfg, sink);
  for (NodeId p = 0; p < r.cfg.numProcessors; ++p) {
    sys.setProgram(p, r.programs[p]);
  }
  return sys.run();
}

TEST(Stream, TeeSinkFansOutToEveryObserver) {
  const LiveRun r = contendedRun(3);
  trace::Trace trace;
  verify::StatsObserver a;
  verify::StatsObserver b;
  proto::TeeSink tee;
  tee.attach(trace);
  tee.attach(a);
  tee.attach(b);
  ASSERT_EQ(tee.attached(), 3u);
  ASSERT_TRUE(runThrough(r, tee).ok());

  EXPECT_GT(a.stats().events, 0u);
  EXPECT_EQ(a.stats().events, b.stats().events);
  EXPECT_EQ(a.stats().operations, trace.operations().size());
  EXPECT_EQ(a.stats().serializations, trace.serializations().size());
  EXPECT_EQ(a.stats().valueTransfers, trace.values().size());
}

TEST(Stream, LifecycleHooksDeliverConfigAndResult) {
  const LiveRun r = contendedRun(5);
  verify::StatsObserver stats;
  ASSERT_TRUE(runThrough(r, stats).ok());

  ASSERT_TRUE(stats.stats().haveConfig);
  EXPECT_EQ(stats.stats().config.numProcessors, r.cfg.numProcessors);
  EXPECT_EQ(stats.stats().config.seed, r.cfg.seed);
  ASSERT_TRUE(stats.stats().haveResult);
  EXPECT_TRUE(stats.stats().result.ok());
  EXPECT_GE(stats.stats().seconds, 0.0);
}

TEST(Stream, StatsCountersMatchTheRecordedTrace) {
  const LiveRun r = contendedRun(7);
  trace::Trace trace;
  verify::StatsObserver stats;
  proto::TeeSink tee{&trace, &stats};
  ASSERT_TRUE(runThrough(r, tee).ok());

  const auto& s = stats.stats();
  EXPECT_EQ(s.serializations, trace.serializations().size());
  EXPECT_EQ(s.operations, trace.operations().size());
  EXPECT_EQ(s.nacks, trace.nacks().size());
  EXPECT_EQ(s.putShareds, trace.putShareds().size());
  EXPECT_EQ(s.stamps, trace.stamps().size());
  std::uint64_t stores = 0;
  for (const auto& op : trace.operations()) {
    if (op.kind == OpKind::Store) ++stores;
  }
  EXPECT_EQ(s.stores, stores);
  EXPECT_EQ(s.loads + s.stores, s.operations);
  EXPECT_FALSE(stats.report().empty());
}

TEST(Stream, CoverageObserverMatchesBatchCoverageIncludingConversions) {
  // Seeds chosen to reach writeback races (transactions 13/14), which are
  // recorded via onTxnConverted — the online observer must rebucket.
  for (const std::uint64_t seed : {1ULL, 4ULL, 9ULL, 15ULL}) {
    const LiveRun r = contendedRun(seed);
    trace::Trace trace;
    campaign::CoverageObserver online;
    proto::TeeSink tee{&trace, &online};
    ASSERT_TRUE(runThrough(r, tee).ok());

    campaign::Coverage batch;
    batch.record(trace);
    for (std::size_t i = 0; i < campaign::kNumPoints; ++i) {
      EXPECT_EQ(online.coverage().counts[i], batch.counts[i])
          << "seed " << seed << ": point "
          << toString(static_cast<campaign::Point>(i));
    }
    EXPECT_EQ(online.txnsSerialized(), trace.serializations().size());
  }
}

TEST(Stream, CheckerSetVerifiesOnlineWithBoundedState) {
  const LiveRun small = contendedRun(11, 300);
  const LiveRun large = contendedRun(11, 3000);

  std::size_t footSmall = 0;
  std::size_t footLarge = 0;
  std::uint64_t eventsSmall = 0;
  std::uint64_t eventsLarge = 0;
  for (const LiveRun* r : {&small, &large}) {
    verify::StreamCheckerSet checkers(
        proto::verifyConfigFor(r->cfg));
    verify::StatsObserver stats(&checkers);
    proto::TeeSink tee{&checkers, &stats};
    ASSERT_TRUE(runThrough(*r, tee).ok());
    checkers.finish();
    const verify::CheckReport report = checkers.report();
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.opsChecked, 0u);
    (r == &small ? footSmall : footLarge) = checkers.memoryFootprint();
    (r == &small ? eventsSmall : eventsLarge) = stats.stats().events;
    EXPECT_GE(stats.stats().peakCheckerBytes, checkers.memoryFootprint() / 2);
  }
  // 10x the workload must not cost 10x the checker state: the footprint is
  // bounded by the configuration (blocks, processors, settle windows), not
  // by the event count.
  ASSERT_GT(eventsLarge, eventsSmall * 5);
  EXPECT_LT(footLarge, footSmall * 3)
      << "streaming state grew with the event count: " << footSmall << " -> "
      << footLarge << " bytes over " << eventsSmall << " -> " << eventsLarge
      << " events";
}

TEST(Stream, FinishIsIdempotent) {
  const LiveRun r = contendedRun(2, 200);
  verify::StreamCheckerSet checkers(proto::verifyConfigFor(r.cfg));
  ASSERT_TRUE(runThrough(r, checkers).ok());
  checkers.finish();
  const std::string once = checkers.report().summary();
  checkers.finish();
  EXPECT_EQ(once, checkers.report().summary());
}

}  // namespace
}  // namespace lcdc
