// Property-based sweeps: for many (seed × topology × workload) points, the
// protocol must drain to quiescence and the full Section 3 property suite
// must hold on the recorded trace.
//
// These sweeps are the dynamic analogue of the paper's universally
// quantified lemmas: each point is one concrete execution of the protocol
// under adversarial message reordering, and the checkers re-establish every
// claim on it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "testutil.hpp"

namespace lcdc {
namespace {

using WorkloadFn =
    std::vector<workload::Program> (*)(const workload::WorkloadConfig&);

std::vector<workload::Program> hotBlockDefault(
    const workload::WorkloadConfig& cfg) {
  return workload::hotBlock(cfg);
}

struct SweepParam {
  const char* name;
  WorkloadFn make;
  NodeId procs;
  NodeId dirs;
  BlockId blocks;
  std::uint32_t capacity;  // 0 = unbounded
  bool putShared;
  std::uint64_t seed;
};

std::string paramName(const testing::TestParamInfo<SweepParam>& info) {
  return std::string(info.param.name) + "_p" +
         std::to_string(info.param.procs) + "b" +
         std::to_string(info.param.blocks) + "c" +
         std::to_string(info.param.capacity) +
         (info.param.putShared ? "_ps" : "_nops") + "_s" +
         std::to_string(info.param.seed);
}

class ProtocolSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweep, AllPropertiesHold) {
  const SweepParam& p = GetParam();
  SystemConfig cfg;
  cfg.numProcessors = p.procs;
  cfg.numDirectories = p.dirs;
  cfg.numBlocks = p.blocks;
  cfg.cacheCapacity = p.capacity;
  cfg.proto.putSharedEnabled = p.putShared;
  cfg.seed = p.seed;

  auto w = test::workloadFor(cfg, 600, p.seed * 7919 + 13);
  w.storePercent = 40;
  w.evictPercent = 8;
  const auto programs = p.make(w);

  const test::RunOutput out = test::runVerified(cfg, programs);
  ASSERT_TRUE(out.result.ok())
      << toString(out.result.outcome) << ": " << out.result.detail;
  EXPECT_TRUE(out.report.ok()) << out.report.summary();
  EXPECT_GT(out.report.opsChecked, 0u);
}

constexpr SweepParam kSweep[] = {
    // Uniform random, various shapes and seeds.
    {"uniform", workload::uniformRandom, 2, 1, 4, 0, true, 1},
    {"uniform", workload::uniformRandom, 2, 1, 1, 0, true, 2},
    {"uniform", workload::uniformRandom, 3, 3, 8, 0, true, 3},
    {"uniform", workload::uniformRandom, 4, 2, 16, 0, true, 4},
    {"uniform", workload::uniformRandom, 8, 4, 64, 0, true, 5},
    {"uniform", workload::uniformRandom, 16, 8, 128, 0, true, 6},
    {"uniform", workload::uniformRandom, 8, 1, 32, 0, false, 7},
    {"uniform", workload::uniformRandom, 5, 3, 24, 0, false, 8},
    // Tight caches: heavy writebacks, Put-Shared and the 13/14 races.
    {"uniform", workload::uniformRandom, 4, 2, 32, 4, true, 9},
    {"uniform", workload::uniformRandom, 8, 4, 64, 3, true, 10},
    {"uniform", workload::uniformRandom, 6, 2, 48, 2, true, 11},
    {"uniform", workload::uniformRandom, 8, 4, 64, 3, false, 12},
    // Hot blocks: NACK storms, upgrade races, invalidation fan-out.
    {"hot", hotBlockDefault, 4, 2, 8, 0, true, 13},
    {"hot", hotBlockDefault, 8, 2, 16, 0, true, 14},
    {"hot", hotBlockDefault, 12, 4, 16, 3, true, 15},
    {"hot", hotBlockDefault, 6, 1, 8, 2, true, 16},
    {"hot", hotBlockDefault, 8, 2, 16, 0, false, 17},
    // Structured sharing patterns.
    {"prodcons", workload::producerConsumer, 4, 2, 16, 0, true, 18},
    {"prodcons", workload::producerConsumer, 8, 4, 16, 4, true, 19},
    {"migratory", workload::migratory, 4, 2, 16, 0, true, 20},
    {"migratory", workload::migratory, 8, 4, 16, 3, true, 21},
    {"falseshare", workload::falseSharing, 4, 1, 4, 0, true, 22},
    {"falseshare", workload::falseSharing, 8, 2, 4, 2, true, 23},
    {"readmostly", workload::readMostly, 8, 4, 16, 0, true, 24},
    {"readmostly", workload::readMostly, 16, 4, 16, 4, true, 25},
};

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolSweep, testing::ValuesIn(kSweep),
                         paramName);

// Across a broad seed sweep on one contended configuration, every one of
// the 14 transactions (and every NACK case) must actually occur — the
// reproduction exercises the whole of Table 1's transaction space, races
// included.
TEST(Coverage, AllFourteenTransactionsOccur) {
  proto::DirStats total;
  proto::CacheStats cacheTotal;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 6;
    cfg.cacheCapacity = 2;
    cfg.seed = seed;
    auto w = test::workloadFor(cfg, 500, seed);
    w.storePercent = 45;
    w.evictPercent = 12;
    const auto programs = workload::hotBlock(w, 80, 3);
    const test::RunOutput out = test::runVerified(cfg, programs);
    ASSERT_TRUE(out.result.ok()) << "seed " << seed << ": "
                                 << toString(out.result.outcome);
    ASSERT_TRUE(out.report.ok()) << "seed " << seed << ": "
                                 << out.report.summary();
    total.merge(out.dirStats);
    cacheTotal.deadlocksResolved += out.cacheStats.deadlocksResolved;
    cacheTotal.staleInvAcks += out.cacheStats.staleInvAcks;
    cacheTotal.putShareds += out.cacheStats.putShareds;
  }
  const TxnKind kinds[] = {
      TxnKind::GetS_Idle,      TxnKind::GetS_Shared,
      TxnKind::GetS_Exclusive, TxnKind::GetX_Idle,
      TxnKind::GetX_Shared,    TxnKind::GetX_Exclusive,
      TxnKind::Upg_Shared,     TxnKind::Wb_Exclusive,
      TxnKind::Wb_BusyShared,  TxnKind::Wb_BusyExclusive,
      TxnKind::Wb_BusyExclusiveSelf,
  };
  for (const TxnKind k : kinds) {
    EXPECT_GT(total.txnByKind[static_cast<std::uint8_t>(k)], 0u)
        << "transaction " << toString(k) << " never exercised";
  }
  const NackKind nacks[] = {NackKind::GetS_Busy, NackKind::GetX_Busy,
                            NackKind::Upg_Exclusive, NackKind::Upg_Busy};
  for (const NackKind k : nacks) {
    EXPECT_GT(total.nackByKind[static_cast<std::uint8_t>(k)], 0u)
        << "NACK case " << toString(k) << " never exercised";
  }
  EXPECT_GT(cacheTotal.putShareds, 0u);
  EXPECT_GT(cacheTotal.staleInvAcks, 0u);
}

}  // namespace
}  // namespace lcdc
