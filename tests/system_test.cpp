// System-level tests: topology mapping, determinism, retry pacing, run
// outcomes, and the final-state cross-check (the simulator's ground-truth
// memory must agree with the Lamport-order replay).
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "testutil.hpp"

namespace lcdc {
namespace {

TEST(System, HomeMappingInterleavesBlocksAfterProcessors) {
  SystemConfig cfg;
  cfg.numProcessors = 4;
  cfg.numDirectories = 3;
  EXPECT_EQ(sim::homeOf(0, cfg), 4u);
  EXPECT_EQ(sim::homeOf(1, cfg), 5u);
  EXPECT_EQ(sim::homeOf(2, cfg), 6u);
  EXPECT_EQ(sim::homeOf(3, cfg), 4u);
}

std::string traceFingerprint(const trace::Trace& t) {
  std::ostringstream os;
  for (const auto& op : t.operations()) {
    os << op.proc << ',' << op.progIdx << ',' << op.value << ','
       << toString(op.ts) << ';';
  }
  for (const auto& s : t.stamps()) {
    os << s.node << ',' << s.txn << ',' << s.ts << ';';
  }
  return os.str();
}

TEST(System, RunsAreDeterministicFromTheSeed) {
  const auto runOnce = [](std::uint64_t seed) {
    SystemConfig cfg;
    cfg.numProcessors = 4;
    cfg.numDirectories = 2;
    cfg.numBlocks = 8;
    cfg.cacheCapacity = 3;
    cfg.seed = seed;
    auto w = test::workloadFor(cfg, 300, 9);
    const auto programs = workload::uniformRandom(w);
    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    EXPECT_TRUE(system.run().ok());
    return traceFingerprint(trace);
  };
  EXPECT_EQ(runOnce(5), runOnce(5));
  EXPECT_NE(runOnce(5), runOnce(6));
}

TEST(System, NacksAreRetriedAfterTheConfiguredDelay) {
  // Hot single block, many writers: NACKs are guaranteed; all programs must
  // nevertheless complete through the retry machinery.
  SystemConfig cfg;
  cfg.numProcessors = 6;
  cfg.numDirectories = 1;
  cfg.numBlocks = 1;
  cfg.retryDelay = 16;
  cfg.seed = 3;
  trace::Trace trace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    workload::Program prog;
    for (int i = 0; i < 40; ++i) {
      prog.steps.push_back(workload::store(0, 0, workload::makeStoreValue(p, i)));
      prog.steps.push_back(workload::evict(0));
    }
    system.setProgram(p, std::move(prog));
  }
  const sim::RunResult r = system.run();
  ASSERT_TRUE(r.ok()) << toString(r.outcome);
  EXPECT_GT(system.aggregateCacheStats().nacksReceived, 0u);
  const auto report = verify::checkAll(trace, verify::VerifyConfig{6});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(System, EmptyProgramsAreImmediatelyQuiescent) {
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  trace::Trace trace;
  sim::System system(cfg, trace);
  const sim::RunResult r = system.run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.eventsProcessed, 0u);
  EXPECT_EQ(r.opsBound, 0u);
}

TEST(System, BudgetExhaustionIsReported) {
  SystemConfig cfg;
  cfg.numProcessors = 4;
  cfg.numDirectories = 2;
  cfg.numBlocks = 8;
  cfg.seed = 2;
  auto w = test::workloadFor(cfg, 2000, 4);
  const auto programs = workload::uniformRandom(w);
  trace::Trace trace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    system.setProgram(p, programs[p]);
  }
  const sim::RunResult r = system.run(/*maxEvents=*/100);
  EXPECT_EQ(r.outcome, sim::RunResult::Outcome::BudgetExhausted);
  EXPECT_EQ(r.eventsProcessed, 100u);
}

// The simulator's ground-truth final memory state must agree with the last
// store per word in the Lamport total order — Lemma 3 evaluated at the end
// of time, connecting the conceptual order back to the physical machine.
TEST(System, FinalMemoryMatchesLamportReplay) {
  SystemConfig cfg;
  cfg.numProcessors = 6;
  cfg.numDirectories = 2;
  cfg.numBlocks = 8;
  cfg.cacheCapacity = 3;
  cfg.seed = 21;
  auto w = test::workloadFor(cfg, 800, 22);
  w.storePercent = 50;
  w.evictPercent = 10;
  const auto programs = workload::hotBlock(w, 70, 4);
  trace::Trace trace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    system.setProgram(p, programs[p]);
  }
  ASSERT_TRUE(system.run().ok());
  ASSERT_TRUE(
      verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors}).ok());

  // Replay: last store per (block, word) in Lamport order.
  std::vector<const proto::OpRecord*> ops;
  for (const auto& op : trace.operations()) ops.push_back(&op);
  std::sort(ops.begin(), ops.end(),
            [](const proto::OpRecord* a, const proto::OpRecord* b) {
              return a->ts < b->ts;
            });
  std::map<std::pair<BlockId, WordIdx>, Word> last;
  for (const auto* op : ops) {
    if (op->kind == OpKind::Store) last[{op->block, op->word}] = op->value;
  }

  // Ground truth: the block's current value lives at the owner's cache when
  // the directory is Exclusive, at the home otherwise.
  for (BlockId b = 0; b < cfg.numBlocks; ++b) {
    const std::size_t dirIdx = b % cfg.numDirectories;
    const proto::DirEntry& entry = system.directory(dirIdx).entry(b);
    const BlockValue* truth = nullptr;
    if (entry.core.state == DirState::Exclusive) {
      const NodeId owner = entry.core.cached.front();
      truth = &system.processor(owner).cache().findLine(b)->data;
    } else {
      truth = &entry.mem;
    }
    ASSERT_NE(truth, nullptr);
    for (WordIdx word = 0; word < cfg.proto.wordsPerBlock; ++word) {
      const auto it = last.find({b, word});
      const Word expected = it == last.end() ? 0 : it->second;
      EXPECT_EQ((*truth)[word], expected)
          << "block " << b << " word " << word;
    }
  }
}

// Per-type traffic conservation: Section 2.1's reliable-delivery guarantee,
// auditable per message type.  At quiescence the per-type sent and
// delivered histograms must agree exactly (and sum to the aggregate
// counters) — a dropped or duplicated Inv/Ack would unbalance its row
// even if the totals happened to cancel.
TEST(System, SentEqualsDeliveredPerTypeAtQuiesce) {
  SystemConfig cfg;
  cfg.numProcessors = 5;
  cfg.numDirectories = 2;
  cfg.numBlocks = 8;
  cfg.cacheCapacity = 2;
  cfg.seed = 11;
  auto w = test::workloadFor(cfg, 500, 12);
  w.storePercent = 40;
  w.evictPercent = 8;
  const auto programs = workload::hotBlock(w, 60, 3);
  trace::Trace trace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    system.setProgram(p, programs[p]);
  }
  ASSERT_TRUE(system.run().ok());

  const net::NetStats& ns = system.network().stats();
  ASSERT_EQ(ns.sentByType.size(), ns.deliveredByType.size());
  std::uint64_t sentSum = 0;
  std::uint64_t deliveredSum = 0;
  for (std::size_t i = 0; i < ns.sentByType.size(); ++i) {
    EXPECT_EQ(ns.sentByType[i], ns.deliveredByType[i])
        << "type " << i << " sent/delivered imbalance at quiescence";
    sentSum += ns.sentByType[i];
    deliveredSum += ns.deliveredByType[i];
  }
  EXPECT_EQ(sentSum, ns.sent);
  EXPECT_EQ(deliveredSum, ns.delivered);
  EXPECT_GT(ns.sent, 0u);
}

TEST(System, ManualModeAdvancesTimeForRetries) {
  // In Manual mode a NACKed processor waits out its retry delay via
  // advanceTime.
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 1;
  cfg.retryDelay = 4;
  trace::Trace trace;
  sim::System sys(cfg, trace, net::Network::Mode::Manual);
  using workload::load;
  using workload::store;
  sys.setProgram(0, {{store(0, 0, 1)}});
  sys.setProgram(1, {{load(0, 0)}});

  sys.kick(0);
  // Home serializes p0's GetX...
  ASSERT_TRUE(sys.deliverManualFirst([](const net::Envelope& e) {
    return e.msg.type == proto::MsgType::GetX;
  }));
  // ...p1's GetS arrives while a fresh Exclusive grant is pending: the
  // directory forwards (Busy-Shared).  Make p1 collide with the busy state:
  sys.kick(1);
  ASSERT_TRUE(sys.deliverManualFirst([](const net::Envelope& e) {
    return e.msg.type == proto::MsgType::GetS;
  }));
  // p0 completes; p1's request was forwarded to p0 before p0 owned it —
  // that forward is buffered and serviced on completion.  Just drain and
  // let retries (if any) play out under advanceTime.
  for (int i = 0; i < 200 && !sys.allProgramsDone(); ++i) {
    if (!sys.network().empty()) {
      sys.deliverManual(0);
    } else {
      sys.advanceTime(8);
    }
  }
  EXPECT_TRUE(sys.allProgramsDone());
  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace lcdc
