// Tests for the TSO extension (Section 5 future work: "consistency models
// other than sequential consistency"): processors with FIFO store buffers
// and load forwarding produce executions that satisfy TSO but in general
// not SC — and the checkers must tell the two models apart precisely.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace lcdc {
namespace {

using workload::load;
using workload::store;

/// Dekker's litmus: p0: St x=1; Ld y.   p1: St y=1; Ld x.
/// SC forbids both loads reading 0; TSO allows it.
struct LitmusOutcome {
  Word p0Reads = ~Word{0};
  Word p1Reads = ~Word{0};
  verify::CheckReport scReport;
  verify::CheckReport tsoReport;
  bool ranOk = false;
};

LitmusOutcome runDekker(std::uint32_t storeBufferDepth, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  cfg.storeBufferDepth = storeBufferDepth;
  cfg.seed = seed;
  const BlockId x = 0, y = 1;

  trace::Trace trace;
  sim::System sys(cfg, trace);
  sys.setProgram(0, {{store(x, 0, 1), load(y, 0)}});
  sys.setProgram(1, {{store(y, 0, 1), load(x, 0)}});
  LitmusOutcome out;
  out.ranOk = sys.run().ok();
  for (const auto& op : trace.operations()) {
    if (op.kind != OpKind::Load) continue;
    if (op.proc == 0) out.p0Reads = op.value;
    if (op.proc == 1) out.p1Reads = op.value;
  }
  verify::VerifyConfig sc{2};
  out.scReport = verify::checkAll(trace, sc);
  verify::VerifyConfig tso{2};
  tso.tso = true;
  out.tsoReport = verify::checkAll(trace, tso);
  return out;
}

TEST(Tso, DekkerUnderScNeverReadsBothZero) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const LitmusOutcome out = runDekker(/*storeBufferDepth=*/0, seed);
    ASSERT_TRUE(out.ranOk);
    EXPECT_TRUE(out.scReport.ok()) << out.scReport.summary();
    EXPECT_FALSE(out.p0Reads == 0 && out.p1Reads == 0)
        << "SC machine produced the forbidden 0/0 outcome at seed " << seed;
  }
}

TEST(Tso, DekkerWithStoreBuffersReachesTheRelaxedOutcome) {
  bool sawBothZero = false;
  bool scEverFlagged = false;
  for (std::uint64_t seed = 1; seed <= 40 && !sawBothZero; ++seed) {
    const LitmusOutcome out = runDekker(/*storeBufferDepth=*/4, seed);
    ASSERT_TRUE(out.ranOk);
    // TSO must always hold — the machine implements TSO by construction.
    EXPECT_TRUE(out.tsoReport.ok()) << out.tsoReport.summary();
    if (out.p0Reads == 0 && out.p1Reads == 0) {
      sawBothZero = true;
      // ...and the SC checker must reject exactly these executions.
      EXPECT_FALSE(out.scReport.ok())
          << "0/0 outcome passed the SC checker";
      scEverFlagged = !out.scReport.ok();
    }
  }
  EXPECT_TRUE(sawBothZero)
      << "store buffers never produced the TSO-only outcome";
  EXPECT_TRUE(scEverFlagged);
}

TEST(Tso, ForwardingReadsOwnBufferedStore) {
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  cfg.storeBufferDepth = 4;
  cfg.seed = 2;
  trace::Trace trace;
  sim::System sys(cfg, trace);
  // The load of x must see the processor's own (possibly still buffered)
  // store, even while another block's load runs in between.
  sys.setProgram(0, {{store(0, 1, 0xCAFE), load(1, 0), load(0, 1)}});
  sys.setProgram(1, {{}});
  ASSERT_TRUE(sys.run().ok());

  const proto::OpRecord* loadX = nullptr;
  for (const auto& op : trace.operations()) {
    if (op.kind == OpKind::Load && op.block == 0) loadX = &op;
  }
  ASSERT_NE(loadX, nullptr);
  EXPECT_EQ(loadX->value, 0xCAFEu);

  verify::VerifyConfig tso{2};
  tso.tso = true;
  EXPECT_TRUE(verify::checkAll(trace, tso).ok());
}

TEST(Tso, RandomWorkloadsSatisfyTsoAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 6;
    cfg.cacheCapacity = 2;
    cfg.storeBufferDepth = 4;
    cfg.seed = seed;
    auto w = test::workloadFor(cfg, 400, seed * 5 + 2);
    w.storePercent = 50;
    w.evictPercent = 10;
    const auto programs = workload::hotBlock(w, 80, 3);
    trace::Trace trace;
    sim::System sys(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      sys.setProgram(p, programs[p]);
    }
    const auto result = sys.run();
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": " << toString(result.outcome);
    verify::VerifyConfig tso{cfg.numProcessors};
    tso.tso = true;
    const auto report = verify::checkAll(trace, tso);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.summary();
  }
}

TEST(Tso, CoherenceClaimsHoldRegardlessOfTheProcessorModel) {
  // The protocol-level properties (Claims 2-3, Lemma 1, the value chain)
  // know nothing about store buffers; they must hold verbatim on TSO runs.
  SystemConfig cfg;
  cfg.numProcessors = 4;
  cfg.numDirectories = 2;
  cfg.numBlocks = 4;
  cfg.storeBufferDepth = 8;
  cfg.seed = 7;
  auto w = test::workloadFor(cfg, 500, 3);
  w.storePercent = 50;
  const auto programs = workload::hotBlock(w, 80, 2);
  trace::Trace trace;
  sim::System sys(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    sys.setProgram(p, programs[p]);
  }
  ASSERT_TRUE(sys.run().ok());
  const verify::VerifyConfig plain{cfg.numProcessors};
  EXPECT_TRUE(verify::checkClaim2(trace, plain).ok());
  EXPECT_TRUE(verify::checkClaim3(trace, plain).ok());
  EXPECT_TRUE(verify::checkValueChain(trace, plain).ok());
}

TEST(Tso, ScCheckerDistinguishesForwardedLoadsInScMode) {
  // A forwarded load appearing in a trace verified as SC is itself a
  // violation (the SC machine has no store buffer).
  SystemConfig cfg;
  cfg.numProcessors = 1;
  cfg.numDirectories = 1;
  cfg.numBlocks = 1;
  cfg.storeBufferDepth = 2;
  trace::Trace trace;
  sim::System sys(cfg, trace);
  sys.setProgram(0, {{store(0, 0, 5), load(0, 0)}});
  ASSERT_TRUE(sys.run().ok());
  const auto report =
      verify::checkEpochs(trace, verify::VerifyConfig{1});
  bool flaggedForwarded = false;
  for (const auto& v : report.violations) {
    flaggedForwarded |= v.detail.find("forwarded load") != std::string::npos;
  }
  EXPECT_TRUE(flaggedForwarded);
}

}  // namespace
}  // namespace lcdc
