// Unit tests for the Section 3.2 operation-stamping rule and epoch types.
#include <gtest/gtest.h>

#include "clock/lamport.hpp"

namespace lcdc::clk {
namespace {

TEST(OpStamper, FirstOpGetsLocalOne) {
  OpStamper s(3);
  const Timestamp ts = s.stamp(5);
  EXPECT_EQ(ts, (Timestamp{5, 1, 3}));
}

TEST(OpStamper, LocalCountsWithinAnEpoch) {
  // "Local timestamps ... enable an unbounded number of LD/ST operations
  // between transactions."
  OpStamper s(0);
  EXPECT_EQ(s.stamp(2), (Timestamp{2, 1, 0}));
  EXPECT_EQ(s.stamp(2), (Timestamp{2, 2, 0}));
  EXPECT_EQ(s.stamp(2), (Timestamp{2, 3, 0}));
  EXPECT_EQ(s.stamp(4), (Timestamp{4, 1, 0}));  // new global -> local resets
  EXPECT_EQ(s.stamp(4), (Timestamp{4, 2, 0}));
}

TEST(OpStamper, GlobalIsMaxOfTxnAndProgramOrder) {
  // global(OP) = max{stamp of bound txn, global of previous op}.
  OpStamper s(1);
  EXPECT_EQ(s.stamp(7), (Timestamp{7, 1, 1}));
  // An op bound to an *older* transaction (different block) must not go
  // backwards: it inherits the previous op's global time.
  EXPECT_EQ(s.stamp(3), (Timestamp{7, 2, 1}));
  EXPECT_EQ(s.stamp(9), (Timestamp{9, 1, 1}));
}

TEST(OpStamper, ProgramOrderEmbedsIntoLamportOrder) {
  OpStamper s(2);
  Timestamp prev = s.stamp(1);
  const GlobalTime txnTs[] = {1, 1, 5, 2, 5, 8, 3, 8};
  for (const GlobalTime t : txnTs) {
    const Timestamp cur = s.stamp(t);
    EXPECT_LT(prev, cur);
    prev = cur;
  }
}

TEST(Epoch, OpenEpochSentinel) {
  Epoch e;
  EXPECT_EQ(e.end, kOpenEpoch);
  e.start = 10;
  e.end = 12;
  EXPECT_LT(e.start, e.end);
}

}  // namespace
}  // namespace lcdc::clk
