// End-to-end smoke tests: run full workloads through the simulated system
// and require every Section 3 property to hold on the recorded trace.
#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

namespace lcdc {
namespace {

verify::CheckReport runAndCheck(const SystemConfig& cfg,
                                const std::vector<workload::Program>& programs,
                                sim::RunResult* outResult = nullptr) {
  trace::Trace trace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    system.setProgram(p, programs[p]);
  }
  const sim::RunResult result = system.run();
  if (outResult != nullptr) *outResult = result;
  EXPECT_TRUE(result.ok()) << toString(result.outcome) << ": "
                           << result.detail;
  return verify::checkAll(trace,
                          verify::VerifyConfig{cfg.numProcessors});
}

TEST(Smoke, TwoProcessorsOneBlock) {
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 1;
  cfg.seed = 42;

  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.proto.wordsPerBlock;
  w.opsPerProcessor = 200;
  w.seed = 7;
  const auto programs = workload::uniformRandom(w);

  const auto report = runAndCheck(cfg, programs);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.opsChecked, 0u);
}

TEST(Smoke, UniformRandomMidSize) {
  SystemConfig cfg;
  cfg.numProcessors = 8;
  cfg.numDirectories = 4;
  cfg.numBlocks = 32;
  cfg.seed = 3;

  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.proto.wordsPerBlock;
  w.opsPerProcessor = 500;
  w.storePercent = 40;
  w.evictPercent = 8;
  w.seed = 11;
  const auto programs = workload::uniformRandom(w);

  const auto report = runAndCheck(cfg, programs);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Smoke, HotBlockContention) {
  SystemConfig cfg;
  cfg.numProcessors = 6;
  cfg.numDirectories = 2;
  cfg.numBlocks = 8;
  cfg.seed = 5;

  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.proto.wordsPerBlock;
  w.opsPerProcessor = 400;
  w.storePercent = 50;
  w.evictPercent = 10;
  w.seed = 13;
  const auto programs = workload::hotBlock(w);

  sim::RunResult result;
  const auto report = runAndCheck(cfg, programs, &result);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace lcdc
