// Unit tests for the trace recorder: record ordering, transaction
// conversion (transactions 13/14a), lookup and reset.
#include <gtest/gtest.h>

#include "trace/trace.hpp"

namespace lcdc::trace {
namespace {

proto::TxnInfo info(TransactionId id, SerialIdx serial, TxnKind kind) {
  proto::TxnInfo t;
  t.id = id;
  t.serial = serial;
  t.kind = kind;
  t.block = 0;
  t.requester = 1;
  return t;
}

TEST(Trace, RecordsCarryMonotoneRealTimeOrder) {
  Trace t;
  t.onSerialize(info(1, 1, TxnKind::GetS_Idle));
  t.onStamp(2, 1, 1, 0, proto::StampRole::Downgrade, 1, AState::X, AState::S);
  t.onNack(0, 0, NackKind::GetS_Busy);
  t.onPutShared(0, 0);
  t.onDeadlockResolved(0, 0, 1);
  proto::OpRecord op;
  op.proc = 0;
  t.onOperation(op);

  EXPECT_EQ(t.serializations()[0].order, 1u);
  EXPECT_EQ(t.stamps()[0].order, 2u);
  EXPECT_EQ(t.nacks()[0].order, 3u);
  EXPECT_EQ(t.putShareds()[0].order, 4u);
  EXPECT_EQ(t.deadlockResolutions()[0].order, 5u);
  EXPECT_EQ(t.operations()[0].order, 6u);
}

TEST(Trace, ConversionRewritesTheKind) {
  Trace t;
  t.onSerialize(info(7, 3, TxnKind::GetS_Exclusive));
  ASSERT_NE(t.findTxn(7), nullptr);
  EXPECT_EQ(t.findTxn(7)->kind, TxnKind::GetS_Exclusive);
  t.onTxnConverted(7, TxnKind::Wb_BusyShared);
  EXPECT_EQ(t.findTxn(7)->kind, TxnKind::Wb_BusyShared);
  EXPECT_EQ(t.findTxn(7)->serial, 3u);  // identity preserved
}

TEST(Trace, FindTxnReturnsNullForUnknown) {
  Trace t;
  EXPECT_EQ(t.findTxn(99), nullptr);
  t.onTxnConverted(99, TxnKind::Wb_BusyShared);  // tolerated
  EXPECT_EQ(t.findTxn(99), nullptr);
}

TEST(Trace, ValueRecordsCopyThePayload) {
  Trace t;
  BlockValue v{1, 2, 3};
  t.onValueReceived(4, 9, 0, v);
  v[0] = 99;  // the trace must have its own copy
  EXPECT_EQ(t.values()[0].value[0], 1u);
  EXPECT_EQ(t.values()[0].node, 4u);
  EXPECT_EQ(t.values()[0].txn, 9u);
}

TEST(Trace, ClearResetsEverything) {
  Trace t;
  t.onSerialize(info(1, 1, TxnKind::GetS_Idle));
  t.onPutShared(0, 0);
  t.clear();
  EXPECT_TRUE(t.serializations().empty());
  EXPECT_TRUE(t.putShareds().empty());
  EXPECT_EQ(t.findTxn(1), nullptr);
  t.onSerialize(info(2, 1, TxnKind::GetS_Idle));
  EXPECT_EQ(t.serializations()[0].order, 1u);  // order restarts
}

}  // namespace
}  // namespace lcdc::trace
