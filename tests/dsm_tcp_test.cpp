// The real TCP serving runtime, in-process: serveTcp on ephemeral
// loopback ports (one thread per node + certifier), driven by runLoad on
// another thread — the full `lcdc serve` / `lcdc load` pair minus the
// process boundary.  Checks the end-to-end contract: a completed load
// session with a clean live verdict, conservation between what the nodes
// shipped and what the certifier merged, and the SIGINT path draining to
// an honest final verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

#include "common/expect.hpp"
#include "dsm/load.hpp"
#include "dsm/serve.hpp"

namespace lcdc {
namespace {

/// Spin until serveTcp publishes its bound ephemeral ports.  Throws (so
/// the caller's catch still stops the serve and joins) on timeout.
void awaitPorts(const std::atomic<bool>& ready) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (ready.load(std::memory_order_acquire)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  throw SimError("serve did not publish its ports");
}

dsm::ServeConfig tcpConfig(std::uint32_t nodes) {
  dsm::ServeConfig cfg;
  cfg.nodes = nodes;
  cfg.system.numBlocks = 16;
  cfg.system.seed = 3;
  cfg.port = 0;  // ephemeral everywhere
  cfg.once = true;
  return cfg;
}

TEST(ServeTcp, ThreeNodeServeWithLoadCertifiesClean) {
  std::atomic<bool> portsReady{false};
  dsm::ServeConfig cfg = tcpConfig(3);
  cfg.portsReady = &portsReady;
  static volatile std::sig_atomic_t stop = 0;
  stop = 0;
  dsm::ServePorts ports;
  dsm::ServeResult serveResult;
  std::thread server([&] { serveResult = dsm::serveTcp(cfg, &stop, &ports); });

  dsm::LoadResult loadResult;
  std::string loadError;
  try {
    awaitPorts(portsReady);
    LCDC_EXPECT(ports.node.size() == 3, "expected three node ports");
    dsm::LoadConfig load;
    load.nodePorts = ports.node;
    load.totalOps = 9'000;
    load.clients = 2;
    load.kind = workload::Kind::Hot;
    load.seed = 21;
    load.chunkSteps = 512;
    loadResult = dsm::runLoad(load);
  } catch (const std::exception& e) {
    loadError = e.what();
    stop = 1;  // --once alone would wait forever for a load session
  }
  server.join();
  ASSERT_TRUE(loadError.empty()) << loadError;

  EXPECT_TRUE(serveResult.ok()) << serveResult.report.summary();
  EXPECT_TRUE(serveResult.drained);
  EXPECT_EQ(loadResult.nodes, 3u);
  EXPECT_EQ(serveResult.opsBound, loadResult.opsBound)
      << "serve and load disagree on the bound-operation count";
  EXPECT_GT(loadResult.chunksDone, 3u);
  std::uint64_t emitted = 0;
  for (const dsm::NodeStats& s : serveResult.nodeStats) {
    emitted += s.eventsEmitted;
  }
  EXPECT_EQ(serveResult.certStats.eventsMerged, emitted)
      << "certifier lost or duplicated events crossing the wire";
}

TEST(ServeTcp, SigintStopDrainsToCleanVerdict) {
  // No load at all: stop a freshly started serve via the sig_atomic_t
  // flag.  The shutdown path must still FIN every stream and produce a
  // clean (trivially empty) drained verdict.
  dsm::ServeConfig cfg = tcpConfig(2);
  cfg.once = false;
  static volatile std::sig_atomic_t stop = 0;
  stop = 0;
  dsm::ServePorts ports;
  dsm::ServeResult r;
  std::thread server([&] { r = dsm::serveTcp(cfg, &stop, &ports); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop = 1;
  server.join();
  EXPECT_TRUE(r.ok()) << r.report.summary();
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.certStats.eventsMerged, 0u);
}

}  // namespace
}  // namespace lcdc
