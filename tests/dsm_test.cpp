// The deterministic loopback DSM runtime: serveMem drives the same
// NodeEngine/CertifierEngine the TCP runtime uses, single-threaded on a
// fixed round-robin schedule, so a (ServeConfig, MemLoadSpec) pair fully
// determines the merged event stream, the verdict and every counter.
// These tests pin that determinism, the clean verdict on the faithful
// protocol (SC and TSO), chunked-program bookkeeping, and that a mutated
// protocol serving real traffic is still caught by the live certifier.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/expect.hpp"
#include "dsm/serve.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"

namespace lcdc {
namespace {

dsm::ServeConfig baseConfig(std::uint32_t nodes) {
  dsm::ServeConfig cfg;
  cfg.nodes = nodes;
  cfg.system.numBlocks = 16;
  cfg.system.seed = 7;
  return cfg;
}

dsm::MemLoadSpec baseLoad(std::uint64_t ops, workload::Kind kind) {
  dsm::MemLoadSpec load;
  load.kind = kind;
  load.totalOps = ops;
  load.seed = 11;
  load.chunkSteps = 256;  // several chunk rollovers per node
  load.window = 2;
  return load;
}

std::string traceText(const trace::Trace& t) {
  std::ostringstream os;
  trace::save(t, os);
  return os.str();
}

TEST(ServeMem, ThreeNodeLoopbackCertifiesClean) {
  const dsm::ServeConfig cfg = baseConfig(3);
  const dsm::ServeResult r =
      dsm::serveMem(cfg, baseLoad(6'000, workload::Kind::Hot));
  EXPECT_TRUE(r.ok()) << r.report.summary();
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.opsBound, 4'000u);
  ASSERT_EQ(r.nodeStats.size(), 3u);
  std::uint64_t events = 0;
  for (const dsm::NodeStats& s : r.nodeStats) {
    EXPECT_GT(s.opsBound, 0u);
    EXPECT_GT(s.chunksDone, 1u) << "chunked delivery did not roll over";
    events += s.eventsEmitted;
  }
  // The certifier saw exactly what the nodes emitted — nothing lost,
  // nothing duplicated by the k-way merge.
  EXPECT_EQ(r.certStats.eventsMerged, events);
}

TEST(ServeMem, TsoStoreBufferServeCertifiesClean) {
  dsm::ServeConfig cfg = baseConfig(3);
  cfg.system.storeBufferDepth = 2;  // proto::verifyConfigFor flips to TSO
  const dsm::ServeResult r =
      dsm::serveMem(cfg, baseLoad(6'000, workload::Kind::Uniform));
  EXPECT_TRUE(r.ok()) << r.report.summary();
}

TEST(ServeMem, FixedSeedsAreDeterministic) {
  const dsm::ServeConfig base = baseConfig(4);
  const dsm::MemLoadSpec load = baseLoad(8'000, workload::Kind::ProdCons);

  trace::Trace first;
  trace::Trace second;
  dsm::ServeConfig cfg = base;
  cfg.archive = &first;
  const dsm::ServeResult a = dsm::serveMem(cfg, load);
  cfg.archive = &second;
  const dsm::ServeResult b = dsm::serveMem(cfg, load);

  // Identical verdicts, counters and — the strong form — an identical
  // merged event stream, record for record.
  EXPECT_EQ(a.report.summary(), b.report.summary());
  EXPECT_EQ(a.opsBound, b.opsBound);
  EXPECT_EQ(a.certStats.eventsMerged, b.certStats.eventsMerged);
  EXPECT_EQ(a.certStats.peakLag, b.certStats.peakLag);
  ASSERT_EQ(a.nodeStats.size(), b.nodeStats.size());
  for (std::size_t i = 0; i < a.nodeStats.size(); ++i) {
    EXPECT_EQ(a.nodeStats[i].opsBound, b.nodeStats[i].opsBound);
    EXPECT_EQ(a.nodeStats[i].chunksDone, b.nodeStats[i].chunksDone);
    EXPECT_EQ(a.nodeStats[i].msgsSent, b.nodeStats[i].msgsSent);
    EXPECT_EQ(a.nodeStats[i].msgsReceived, b.nodeStats[i].msgsReceived);
    EXPECT_EQ(a.nodeStats[i].eventsEmitted, b.nodeStats[i].eventsEmitted);
    EXPECT_EQ(a.nodeStats[i].chunkPumpLatency, b.nodeStats[i].chunkPumpLatency);
  }
  EXPECT_EQ(traceText(first), traceText(second));
  EXPECT_FALSE(traceText(first).empty());
}

TEST(ServeMem, SeedChangesTheRun) {
  const dsm::ServeConfig cfg = baseConfig(3);
  dsm::MemLoadSpec load = baseLoad(5'000, workload::Kind::Uniform);
  const dsm::ServeResult a = dsm::serveMem(cfg, load);
  load.seed += 1;
  const dsm::ServeResult b = dsm::serveMem(cfg, load);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_NE(a.certStats.eventsMerged, b.certStats.eventsMerged)
      << "different workload seeds produced an identical event stream";
}

TEST(ServeMem, SingleNodeDegenerateTopologyWorks) {
  const dsm::ServeConfig cfg = baseConfig(1);
  const dsm::ServeResult r =
      dsm::serveMem(cfg, baseLoad(2'000, workload::Kind::Uniform));
  EXPECT_TRUE(r.ok()) << r.report.summary();
  EXPECT_EQ(r.nodeStats[0].msgsSent, 0u) << "one node has no remote peers";
}

TEST(ServeMem, MutatedProtocolIsCaughtLive) {
  // A value-corrupting mutant serving real traffic must be flagged by the
  // online certifier.  Like tests/mutant_test.cpp, detection needs a
  // contended schedule, so sweep a few seeds; stale-value bugs do not
  // stall the protocol, so every sweep run still terminates.
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
    dsm::ServeConfig cfg = baseConfig(3);
    cfg.system.numBlocks = 4;  // contention
    cfg.system.seed = seed;
    cfg.system.proto.mutant = Mutant::ForwardStaleValue;
    dsm::MemLoadSpec load = baseLoad(8'000, workload::Kind::Hot);
    load.seed = seed * 31 + 7;
    try {
      const dsm::ServeResult r = dsm::serveMem(cfg, load);
      caught = !r.report.ok();
    } catch (const ProtocolError&) {
      caught = true;  // always-on invariant fired before the checkers
    }
  }
  EXPECT_TRUE(caught) << "forward-stale-value served traffic undetected";
}

}  // namespace
}  // namespace lcdc
