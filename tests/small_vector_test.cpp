// SmallVector: inline-capacity behavior, spill to heap, and std::vector
// parity on the operations the hot path uses.  This suite is part of the
// ASan job's coverage of the new pooling/inline-storage code.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/small_vector.hpp"

namespace lcdc {
namespace {

using common::SmallVector;

TEST(SmallVector, StartsEmptyAndInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.inlined());
}

TEST(SmallVector, PushWithinInlineCapacityDoesNotSpill) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.inlined());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsPastInlineCapacityAndKeepsElements) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.inlined());
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, CountAndFillConstructors) {
  SmallVector<int, 4> zeroed(3);
  ASSERT_EQ(zeroed.size(), 3u);
  for (const int x : zeroed) EXPECT_EQ(x, 0);

  SmallVector<int, 4> filled(6, 7);
  ASSERT_EQ(filled.size(), 6u);
  EXPECT_FALSE(filled.inlined());
  for (const int x : filled) EXPECT_EQ(x, 7);
}

TEST(SmallVector, InitializerListAndEquality) {
  SmallVector<int, 4> a{1, 2, 3};
  SmallVector<int, 4> b{1, 2, 3};
  SmallVector<int, 4> c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a = {9, 8};
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 9);
  EXPECT_EQ(a[1], 8);
}

TEST(SmallVector, CopyPreservesAndDetaches) {
  SmallVector<std::string, 2> v{"alpha", "beta", "gamma"};
  SmallVector<std::string, 2> copy = v;
  EXPECT_EQ(copy, v);
  copy[0] = "changed";
  EXPECT_EQ(v[0], "alpha");
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const int* heap = v.data();
  SmallVector<int, 2> moved = std::move(v);
  EXPECT_EQ(moved.data(), heap);  // stolen, not copied
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.inlined());
  ASSERT_EQ(moved.size(), 50u);
  EXPECT_EQ(moved[49], 49);
}

TEST(SmallVector, MoveOfInlineVectorMovesElements) {
  SmallVector<std::unique_ptr<int>, 4> v;
  v.emplace_back(std::make_unique<int>(42));
  SmallVector<std::unique_ptr<int>, 4> moved = std::move(v);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(*moved[0], 42);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, MoveAssignmentReleasesOldContents) {
  SmallVector<std::string, 2> a{"x", "y", "z"};
  SmallVector<std::string, 2> b{"only"};
  a = std::move(b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], "only");
}

TEST(SmallVector, SelfMoveAndSelfCopyAreSafe) {
  SmallVector<int, 2> v{1, 2, 3};
  v = v;
  ASSERT_EQ(v.size(), 3u);
  auto& alias = v;
  v = std::move(alias);
  EXPECT_EQ(v.size(), 3u);
}

TEST(SmallVector, ResizeGrowsValueInitializedAndShrinksDestroying) {
  SmallVector<int, 2> v{5};
  v.resize(4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[3], 0);
  v.resize(1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 5);
  v.resize(3, 9);
  EXPECT_EQ(v[2], 9);
}

TEST(SmallVector, ClearKeepsCapacity) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 40; ++i) v.push_back(i);
  const auto cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // spill storage retained for reuse
}

TEST(SmallVector, SortedInsertAndEraseMatchVector) {
  SmallVector<int, 4> sv;
  std::vector<int> oracle;
  const int vals[] = {7, 3, 9, 1, 5, 8, 2, 6, 4, 0};
  for (const int x : vals) {
    sv.insert(std::lower_bound(sv.begin(), sv.end(), x), x);
    oracle.insert(std::lower_bound(oracle.begin(), oracle.end(), x), x);
    ASSERT_TRUE(std::equal(sv.begin(), sv.end(), oracle.begin(), oracle.end()));
  }
  for (const int x : {5, 0, 9}) {
    sv.erase(std::lower_bound(sv.begin(), sv.end(), x));
    oracle.erase(std::lower_bound(oracle.begin(), oracle.end(), x));
    ASSERT_TRUE(std::equal(sv.begin(), sv.end(), oracle.begin(), oracle.end()));
  }
}

TEST(SmallVector, AssignRangeReplacesContents) {
  const std::vector<int> src{4, 5, 6, 7, 8};
  SmallVector<int, 2> v{1, 2};
  v.assign(src.begin(), src.end());
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 8);
}

TEST(SmallVector, IterationRangeConstructedFromRange) {
  const std::vector<int> src{1, 2, 3};
  SmallVector<int, 8> v(src.begin(), src.end());
  int sum = 0;
  for (const int x : v) sum += x;
  EXPECT_EQ(sum, 6);
}

TEST(SmallVector, NonTrivialElementsDestroyedExactlyOnce) {
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(const Probe&) { ++live; }
    Probe(Probe&&) noexcept { ++live; }
    Probe& operator=(const Probe&) = default;
    Probe& operator=(Probe&&) noexcept = default;
    ~Probe() { --live; }
  };
  {
    SmallVector<Probe, 2> v;
    for (int i = 0; i < 10; ++i) v.emplace_back();
    v.resize(3);
    v.pop_back();
    SmallVector<Probe, 2> other = std::move(v);
    other.erase(other.begin());
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace lcdc
