// Unit tests for the common vocabulary: RNG determinism and uniformity,
// timestamp ordering, A-state algebra, and string rendering.
#include <gtest/gtest.h>

#include <set>

#include "common/config.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/timestamp.hpp"
#include "common/types.hpp"

namespace lcdc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInBounds) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = r.uniform(3, 17);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 17u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 100));
    EXPECT_TRUE(r.chance(100, 100));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.chance(25, 100);
  EXPECT_NEAR(hits, 25'000, 1'000);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(9), parent2(9);
  Rng childA = parent1.fork();
  Rng childB = parent2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(childA(), childB());
}

TEST(Timestamp, LexicographicOrdering) {
  const Timestamp a{1, 2, 0};
  const Timestamp b{1, 2, 1};
  const Timestamp c{1, 3, 0};
  const Timestamp d{2, 1, 0};
  EXPECT_LT(a, b);  // pid breaks ties
  EXPECT_LT(b, c);  // local dominates pid
  EXPECT_LT(c, d);  // global dominates local
  EXPECT_EQ(a, (Timestamp{1, 2, 0}));
}

TEST(Timestamp, ToString) {
  EXPECT_EQ(toString(Timestamp{3, 1, 2}), "(3,1,p2)");
}

TEST(AState, UpgradeDowngradeAlgebra) {
  EXPECT_TRUE(isAStateUpgrade(AState::I, AState::S));
  EXPECT_TRUE(isAStateUpgrade(AState::I, AState::X));
  EXPECT_TRUE(isAStateUpgrade(AState::S, AState::X));
  EXPECT_FALSE(isAStateUpgrade(AState::S, AState::S));
  EXPECT_FALSE(isAStateUpgrade(AState::X, AState::S));
  EXPECT_TRUE(isAStateDowngrade(AState::X, AState::S));
  EXPECT_TRUE(isAStateDowngrade(AState::X, AState::I));
  EXPECT_TRUE(isAStateDowngrade(AState::S, AState::I));
  EXPECT_FALSE(isAStateDowngrade(AState::I, AState::I));
  EXPECT_FALSE(isAStateDowngrade(AState::I, AState::X));
}

TEST(Expect, ThrowsProtocolErrorWithContext) {
  try {
    LCDC_EXPECT(false, "something impossible happened");
    FAIL() << "LCDC_EXPECT did not throw";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("something impossible happened"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Strings, EnumRenderingIsTotal) {
  EXPECT_EQ(toString(ReqType::GetShared), "Get-Shared");
  EXPECT_EQ(toString(ReqType::Writeback), "Writeback");
  EXPECT_EQ(toString(CacheState::ReadWrite), "read-write");
  EXPECT_EQ(toString(AState::X), "A_X");
  EXPECT_EQ(toString(DirState::BusyShared), "Busy-Shared");
  EXPECT_EQ(toString(TxnKind::Wb_BusyExclusiveSelf),
            "14b:Wb/Busy-Exclusive-self");
  EXPECT_EQ(toString(NackKind::Upg_Exclusive), "10:Upg/Exclusive");
  EXPECT_EQ(toString(OpKind::Load), "LD");
  EXPECT_EQ(std::string(toString(Mutant::SkipInvAckWait)),
            "skip-inv-ack-wait");
}

}  // namespace
}  // namespace lcdc
