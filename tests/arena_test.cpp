// Tests for the bump-allocation arena used by the explorer's encoding and
// frontier-blob storage: cursor behaviour, oversized blobs, reservation
// accounting, reset, and multi-threaded block grabbing.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/arena.hpp"

namespace lcdc {
namespace {

TEST(Arena, BumpAllocationIsContiguousWithinABlock) {
  Arena arena(1024);
  ArenaRef ref(arena);
  std::byte* a = ref.alloc(100);
  std::byte* b = ref.alloc(50);
  EXPECT_EQ(b, a + 100) << "within a block, alloc must bump";
  EXPECT_EQ(arena.bytesReserved(), 1024u);
}

TEST(Arena, AllocationsSurviveBlockRefills) {
  Arena arena(256);
  ArenaRef ref(arena);
  std::vector<std::pair<std::byte*, int>> blobs;
  for (int i = 0; i < 100; ++i) {
    std::byte* p = ref.alloc(40);
    std::memset(p, i, 40);
    blobs.emplace_back(p, i);
  }
  for (const auto& [p, i] : blobs) {
    for (int j = 0; j < 40; ++j) {
      ASSERT_EQ(std::to_integer<int>(p[j]), i);
    }
  }
  EXPECT_GT(arena.bytesReserved(), 100u * 40u / 2);
}

TEST(Arena, OversizedRequestGetsItsOwnBlock) {
  Arena arena(256);
  ArenaRef ref(arena);
  std::byte* big = ref.alloc(10'000);
  std::memset(big, 0x5A, 10'000);
  EXPECT_GE(arena.bytesReserved(), 10'000u);
}

TEST(Arena, ResetDropsReservation) {
  Arena arena(512);
  {
    ArenaRef ref(arena);
    (void)ref.alloc(100);
    (void)ref.alloc(100);
  }
  EXPECT_GT(arena.bytesReserved(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytesReserved(), 0u);
  // Reusable after reset.
  ArenaRef ref(arena);
  std::byte* p = ref.alloc(64);
  std::memset(p, 1, 64);
  EXPECT_EQ(arena.bytesReserved(), 512u);
}

TEST(Arena, ConcurrentRefsDoNotOverlap) {
  // Several threads bump through private refs on one shared arena; every
  // blob is stamped with the writer's pattern and verified afterwards —
  // overlapping handouts would corrupt someone's stamp.
  Arena arena(4096);
  constexpr int kThreads = 8;
  constexpr int kBlobs = 500;
  std::vector<std::vector<std::byte*>> blobs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &blobs, t] {
      ArenaRef ref(arena);
      for (int i = 0; i < kBlobs; ++i) {
        std::byte* p = ref.alloc(64);
        std::memset(p, t, 64);
        blobs[static_cast<std::size_t>(t)].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (std::byte* p : blobs[static_cast<std::size_t>(t)]) {
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(std::to_integer<int>(p[j]), t);
      }
    }
  }
}

}  // namespace
}  // namespace lcdc
