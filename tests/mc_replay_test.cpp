// Counterexample replay: a schedule found by the model checker re-executes
// through the event-driven simulator (manual network mode) and the streaming
// Lamport checkers — the bridge between the two verification worlds.  The
// MC's abstract claim ("SWMR violated", "deadlock reachable") must turn into
// a concrete simulator run that the Section 3 checkers (or the watchdog)
// flag for the same reason, with zero divergence between the worlds.
#include <gtest/gtest.h>

#include <algorithm>

#include "mc/model_checker.hpp"
#include "mc/replay.hpp"

namespace lcdc {
namespace {

/// Explore and require a counterexample.
mc::McResult findCex(Mutant m, bool modelData = false) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = m;
  cfg.modelData = modelData;
  mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.counterexample.has_value()) << "no counterexample for mutant "
                                            << toString(m);
  return r;
}

bool reportHas(const verify::CheckReport& rep, const std::string& check) {
  return std::any_of(rep.violations.begin(), rep.violations.end(),
                     [&check](const verify::Violation& v) {
                       return v.check.find(check) != std::string::npos;
                     });
}

TEST(Replay, SkipInvAckWaitTripsLemma1) {
  const mc::McResult r = findCex(Mutant::SkipInvAckWait);
  ASSERT_TRUE(r.counterexample.has_value());
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_TRUE(rep.scheduleCompleted);
  // The MC saw SWMR break; the Lamport checkers see the same overlap as
  // incompatible epochs (Lemma 1).
  EXPECT_FALSE(rep.report.ok());
  EXPECT_TRUE(reportHas(rep.report, "lemma1")) << rep.report.summary();
}

TEST(Replay, StaleDataFromHomeIsFlagged) {
  const mc::McResult r = findCex(Mutant::StaleDataFromHome);
  ASSERT_TRUE(r.counterexample.has_value());
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::StaleDataFromHome;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_TRUE(rep.flagged());
}

TEST(Replay, IgnoreInvalidationIsFlagged) {
  const mc::McResult r = findCex(Mutant::IgnoreInvalidation);
  ASSERT_TRUE(r.counterexample.has_value());
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::IgnoreInvalidation;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_TRUE(rep.flagged());
}

TEST(Replay, ForwardStaleValueTripsValueCheckers) {
  // Only the value-tracking abstraction catches this mutant, and only the
  // value-chain / SC checkers flag the replay.
  const mc::McResult r = findCex(Mutant::ForwardStaleValue, /*modelData=*/true);
  ASSERT_TRUE(r.counterexample.has_value());
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::ForwardStaleValue;
  cfg.modelData = true;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_FALSE(rep.report.ok()) << "stale forwarded value not flagged";
}

TEST(Replay, NoDeadlockDetectionDeadlocksTheSimulator) {
  const mc::McResult r = findCex(Mutant::NoDeadlockDetection);
  ASSERT_TRUE(r.counterexample.has_value());
  ASSERT_EQ(r.counterexample->kind, "deadlock");
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::NoDeadlockDetection;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_TRUE(rep.scheduleCompleted);
  // The Figure 2 hang: messages drained, nodes stuck.
  EXPECT_TRUE(rep.deadlocked);
}

TEST(Replay, NoBusyNackIsFlagged) {
  const mc::McResult r = findCex(Mutant::NoBusyNack);
  ASSERT_TRUE(r.counterexample.has_value());
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::NoBusyNack;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_TRUE(rep.flagged());
}

TEST(Replay, ReducedCounterexamplesReplayToo) {
  // Schedules reconstructed from the symmetry+POR-reduced graph are still
  // concrete executable schedules (node ids of the representative state).
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  cfg.symmetry = true;
  cfg.por = true;
  const mc::McResult r = mc::explore(cfg);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.counterexample.has_value());
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_TRUE(rep.flagged());
}

TEST(Replay, TraceCaptureWorks) {
  const mc::McResult r = findCex(Mutant::SkipInvAckWait);
  ASSERT_TRUE(r.counterexample.has_value());
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  trace::Trace trace;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, r.counterexample->schedule, &trace);
  EXPECT_TRUE(rep.divergence.empty()) << rep.divergence;
  EXPECT_FALSE(trace.stamps().empty());
  EXPECT_FALSE(trace.operations().empty());
}

}  // namespace
}  // namespace lcdc
