// Tardis (Yu & Devadas) under the unchanged Lamport-clock checkers — the
// generalization evidence for the backend API: a protocol with *no*
// invalidation fan-out, whose control decisions read logical timestamps,
// certified by checkers written for the paper's directory protocol.
//
// Also pins the three unordered-network races the port surfaced (all fixed
// by naming ownership epochs with the strictly-increasing grant timestamp):
//   1. FlushReq overtakes its own DataExclusive  -> deferred flush,
//   2. stale FlushReq arrives after the owner re-acquired X,
//   3. stale FlushData/Writeback closes a newer Busy epoch of the same
//      owner -> second exclusive copy.
// Races 2 and 3 were found by the Tardis model checker, not by random
// simulation; the bounded-exhaustive MC runs here keep them found.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "common/expect.hpp"
#include "mc/model_checker.hpp"
#include "proto/observer.hpp"
#include "tardis/tardis_system.hpp"
#include "testutil.hpp"
#include "verify/stream.hpp"

namespace lcdc {
namespace {

SystemConfig tardisConfig(std::uint64_t seed) {
  SystemConfig cfg;
  cfg.protocol = ProtocolKind::Tardis;
  cfg.numProcessors = 4;
  cfg.numDirectories = 2;
  cfg.numBlocks = 8;
  cfg.cacheCapacity = 0;
  cfg.seed = seed;
  return cfg;
}

/// One Tardis run with trace + live checkers attached; returns the
/// TardisStats alongside both verdicts so tests can assert on lease
/// machinery without re-running.
struct TardisRun {
  RunResult result;
  verify::CheckReport streaming;
  verify::CheckReport batch;
  tardis::TardisStats stats;
};

TardisRun runTardis(const SystemConfig& cfg,
                    const std::vector<workload::Program>& programs) {
  const verify::VerifyConfig vc = proto::verifyConfigFor(cfg);
  trace::Trace trace;
  verify::StreamCheckerSet checkers(vc);
  proto::TeeSink tee{&trace, &checkers};
  tardis::TardisSystem sys(cfg, tee);
  for (NodeId p = 0; p < cfg.numProcessors && p < programs.size(); ++p) {
    sys.setProgram(p, programs[p]);
  }
  TardisRun out;
  out.result = sys.run(20'000'000);
  checkers.finish();
  out.streaming = checkers.report();
  out.batch = verify::checkAll(trace, vc);
  out.stats = sys.stats();
  return out;
}

TEST(Tardis, CleanVerdictAcrossWorkloadsAndSeeds) {
  const workload::Kind kinds[] = {
      workload::Kind::Uniform,     workload::Kind::Hot,
      workload::Kind::Migratory,   workload::Kind::ReadMostly,
      workload::Kind::LeaseChurn,
  };
  for (const workload::Kind kind : kinds) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SystemConfig cfg = tardisConfig(seed);
      auto w = test::workloadFor(cfg, 400, seed * 17 + 3);
      w.storePercent = 45;
      w.evictPercent = 10;
      const std::string what =
          std::string(workload::toString(kind)) + " seed " +
          std::to_string(seed);
      const TardisRun run = runTardis(cfg, workload::make(kind, w));
      ASSERT_TRUE(run.result.ok()) << what << ": " << run.result.detail;
      EXPECT_TRUE(run.streaming.ok()) << what << ": "
                                      << run.streaming.summary();
      EXPECT_TRUE(run.batch.ok()) << what << ": " << run.batch.summary();
      EXPECT_EQ(run.streaming.summary(), run.batch.summary()) << what;
    }
  }
}

TEST(Tardis, ShortLeasesRenewAndExpire) {
  SystemConfig cfg = tardisConfig(7);
  cfg.proto.leaseLength = 2;  // expire nearly every read under contention
  auto w = test::workloadFor(cfg, 500, 41);
  w.storePercent = 40;
  const TardisRun run = runTardis(cfg, workload::leaseChurn(w));
  ASSERT_TRUE(run.result.ok()) << run.result.detail;
  EXPECT_TRUE(run.streaming.ok()) << run.streaming.summary();
  EXPECT_GT(run.stats.leaseExpiries, 0u)
      << "leaseLength 2 under write contention must expire leases";
  EXPECT_GT(run.stats.leaseRenewals, 0u);
  EXPECT_GT(run.stats.exclusiveGrants, 0u);
}

TEST(Tardis, LeaseFrontierTracksLeaseLength) {
  // leaseLength steers the home's read frontier: every shared grant
  // extends rts past u + L, so a huge L leaves a huge frontier behind.
  // (Expiry-on-read counts are *not* monotone in L — the hc bump over the
  // frontier makes reader clocks scale with L too; see the header note on
  // the lease-liveness caveat.)
  auto frontier = [](std::uint32_t leaseLength) {
    SystemConfig cfg = tardisConfig(7);
    cfg.numBlocks = 1;  // all traffic on block 0 so its frontier moves
    cfg.proto.leaseLength = leaseLength;
    auto w = test::workloadFor(cfg, 200, 41);
    w.storePercent = 10;
    const auto programs = workload::uniformRandom(w);
    trace::Trace trace;
    tardis::TardisSystem sys(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      sys.setProgram(p, programs[p]);
    }
    EXPECT_TRUE(sys.run(20'000'000).ok());
    EXPECT_TRUE(
        verify::checkAll(trace, proto::verifyConfigFor(cfg)).ok());
    return sys.leaseFrontier(0);
  };
  const GlobalTime shortLease = frontier(2);
  const GlobalTime longLease = frontier(1'000'000);
  EXPECT_GE(longLease, 1'000'000u);
  EXPECT_LT(shortLease, longLease);
}

// Race 1 regression: on the unordered network a home's FlushReq routinely
// overtakes the DataExclusive it chases.  The sweep must (a) actually
// exercise the deferred-flush path and (b) always quiesce — before the fix
// this config livelocked (home Busy forever, nacking every retry).
TEST(Tardis, DeferredFlushRaceIsExercisedAndSurvived) {
  std::uint64_t deferred = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SystemConfig cfg = tardisConfig(seed);
    auto w = test::workloadFor(cfg, 400, seed * 31 + 7);
    w.storePercent = 60;
    const TardisRun run = runTardis(cfg, workload::hotBlock(w, 85, 2));
    ASSERT_TRUE(run.result.ok())
        << "seed " << seed << ": " << run.result.detail;
    EXPECT_TRUE(run.streaming.ok())
        << "seed " << seed << ": " << run.streaming.summary();
    deferred += run.stats.deferredFlushes;
  }
  EXPECT_GT(deferred, 0u)
      << "sweep never raced a FlushReq past its DataExclusive — the "
         "regression this test pins is not being exercised";
}

TEST(Tardis, CapacityEvictionsVerifyClean) {
  SystemConfig cfg = tardisConfig(11);
  cfg.cacheCapacity = 2;
  auto w = test::workloadFor(cfg, 400, 19);
  w.storePercent = 50;
  w.evictPercent = 15;
  const TardisRun run = runTardis(cfg, workload::hotBlock(w, 70, 3));
  ASSERT_TRUE(run.result.ok()) << run.result.detail;
  EXPECT_TRUE(run.streaming.ok()) << run.streaming.summary();
  EXPECT_GT(run.stats.capacityEvictions, 0u);
  EXPECT_GT(run.stats.writebacks, 0u);
}

TEST(Tardis, ResetReproducesIdenticalRuns) {
  SystemConfig cfg = tardisConfig(5);
  auto w = test::workloadFor(cfg, 300, 23);
  w.storePercent = 50;
  const auto programs = workload::hotBlock(w, 80, 2);

  verify::VerifyConfig vc = proto::verifyConfigFor(cfg);
  verify::StreamCheckerSet checkers(vc);
  tardis::TardisSystem sys(cfg, checkers);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    sys.setProgram(p, programs[p]);
  }

  auto statsLine = [](const tardis::TardisStats& s) {
    std::ostringstream os;
    os << s.txnsSerialized << ' ' << s.sharedGrants << ' '
       << s.exclusiveGrants << ' ' << s.leaseRenewals << ' '
       << s.leaseExpiries << ' ' << s.flushes << ' ' << s.deferredFlushes
       << ' ' << s.writebacks << ' ' << s.nacksSent << ' '
       << s.retriesIssued;
    return os.str();
  };

  const RunResult first = sys.run(20'000'000);
  ASSERT_TRUE(first.ok()) << first.detail;
  const std::string firstStats = statsLine(sys.stats());

  sys.reset(cfg.seed);
  const RunResult second = sys.run(20'000'000);
  ASSERT_TRUE(second.ok()) << second.detail;

  EXPECT_EQ(first.eventsProcessed, second.eventsProcessed);
  EXPECT_EQ(first.endTime, second.endTime);
  EXPECT_EQ(first.opsBound, second.opsBound);
  EXPECT_EQ(firstStats, statsLine(sys.stats()));

  // A different seed must take a different path (same programs, new
  // network latencies) — reset is a real rewind, not a replay.
  sys.reset(cfg.seed + 1);
  const RunResult third = sys.run(20'000'000);
  ASSERT_TRUE(third.ok()) << third.detail;
  EXPECT_NE(first.endTime, third.endTime);
}

// -- backend contract ---------------------------------------------------------

TEST(TardisBackend, RegistryExposesAllThreeBackends) {
  const auto& dir = proto::backendFor(ProtocolKind::Directory);
  const auto& bus = proto::backendFor(ProtocolKind::Bus);
  const auto& tardis = proto::backendFor(ProtocolKind::Tardis);
  EXPECT_STREQ(dir.name(), "dir");
  EXPECT_STREQ(bus.name(), "bus");
  EXPECT_STREQ(tardis.name(), "tardis");
  EXPECT_EQ(tardis.kind(), ProtocolKind::Tardis);
  EXPECT_TRUE(tardis.supportsModelChecking());
  EXPECT_FALSE(bus.supportsModelChecking());

  EXPECT_EQ(proto::protocolFromName("tardis"), ProtocolKind::Tardis);
  // Deprecated alias from the pre-backend CLI still parses.
  EXPECT_EQ(proto::protocolFromName("directory"), ProtocolKind::Directory);
  EXPECT_THROW((void)proto::protocolFromName("mesi"), SimError);
}

TEST(TardisBackend, VerifyConfigCarriesProtocolAndRejectsTso) {
  SystemConfig cfg = tardisConfig(1);
  EXPECT_EQ(proto::verifyConfigFor(cfg).protocol, ProtocolKind::Tardis);

  cfg.storeBufferDepth = 2;
  EXPECT_THROW((void)proto::verifyConfigFor(cfg), SimError);
  EXPECT_THROW(
      {
        trace::Trace trace;
        proto::backendFor(ProtocolKind::Tardis)
            .makeSystem(cfg, trace, net::Network::Mode::RandomLatency);
      },
      SimError);
}

// Satellite guard: a VerifyConfig built for one backend attached to
// another backend's run must fail loudly at onRunBegin, in both
// directions — silently mis-checking foreign traffic is the failure mode
// the backend-provided factory exists to prevent.
TEST(TardisBackend, MismatchedCheckerConfigIsRejectedBothWays) {
  SystemConfig tardisCfg = tardisConfig(1);
  SystemConfig dirCfg = tardisCfg;
  dirCfg.protocol = ProtocolKind::Directory;
  auto w = test::workloadFor(tardisCfg, 50, 9);

  {
    // Directory-built checkers on a Tardis run.
    verify::StreamCheckerSet checkers(proto::verifyConfigFor(dirCfg));
    auto sys = proto::backendFor(ProtocolKind::Tardis)
                   .makeSystem(tardisCfg, checkers,
                               net::Network::Mode::RandomLatency);
    const auto programs = workload::uniformRandom(w);
    for (NodeId p = 0; p < tardisCfg.numProcessors; ++p) {
      sys->setProgram(p, programs[p]);
    }
    EXPECT_THROW(sys->run(1'000'000), SimError);
  }
  {
    // Tardis-built checkers on a directory run.
    verify::StreamCheckerSet checkers(proto::verifyConfigFor(tardisCfg));
    auto sys = proto::backendFor(ProtocolKind::Directory)
                   .makeSystem(dirCfg, checkers,
                               net::Network::Mode::RandomLatency);
    const auto programs = workload::uniformRandom(w);
    for (NodeId p = 0; p < dirCfg.numProcessors; ++p) {
      sys->setProgram(p, programs[p]);
    }
    EXPECT_THROW(sys->run(1'000'000), SimError);
  }
}

// -- model checker ------------------------------------------------------------

mc::McResult tardisMc(Mutant m, std::uint64_t maxStates) {
  mc::McConfig cfg;
  cfg.protocol = ProtocolKind::Tardis;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = m;
  cfg.maxStates = maxStates;
  return mc::explore(cfg);
}

// The rank-compressed Tardis state space at (2,1) is not finite under the
// default bound, so the pristine run is bounded-exhaustive: every state
// within the cap must satisfy the invariants.  Races 2 and 3 were both
// found well inside this bound.
TEST(TardisMc, PristineBoundedExploreIsClean) {
  const mc::McResult r = tardisMc(Mutant::None, 150'000);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_GT(r.statesExplored, 10'000u);
}

TEST(TardisMc, DropLeaseBumpIsCaughtByName) {
  const mc::McResult r = tardisMc(Mutant::DropLeaseBump, 150'000);
  ASSERT_FALSE(r.violations.empty())
      << "dropping the lease bump must grant exclusivity inside a live "
         "lease";
  EXPECT_NE(r.violations.front().find("lease frontier"), std::string::npos)
      << r.violations.front();
  EXPECT_FALSE(r.hitStateLimit) << "mutant should be refuted in few states";
}

TEST(TardisMc, BusBackendIsRejected) {
  mc::McConfig cfg;
  cfg.protocol = ProtocolKind::Bus;
  EXPECT_THROW(mc::explore(cfg), SimError);
}

}  // namespace
}  // namespace lcdc
