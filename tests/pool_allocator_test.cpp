// PoolResource/PoolAllocator: the recycling node pool behind the pooled
// streaming checkers.  The contract under test: same-size allocations are
// recycled through free lists (the high-water footprint is carved once),
// oversized requests fall through to operator new without mixing
// provenance, and standard node-based containers run on it unchanged.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "common/pool_allocator.hpp"

namespace lcdc::common {
namespace {

TEST(PoolResource, RecyclesSameSizeAllocations) {
  PoolResource pool;
  void* a = pool.allocate(24);
  void* b = pool.allocate(24);
  EXPECT_NE(a, b);
  const std::size_t carved = pool.bytesCarved();
  pool.deallocate(a, 24);
  pool.deallocate(b, 24);
  // LIFO free list: the most recently freed node comes back first.
  EXPECT_EQ(pool.allocate(24), b);
  EXPECT_EQ(pool.allocate(24), a);
  EXPECT_EQ(pool.bytesCarved(), carved) << "recycling must not carve";
}

TEST(PoolResource, SizesShareAClassOnlyAfterRounding) {
  PoolResource pool;
  // 17..32 all round to the same 16-byte-aligned class.
  void* a = pool.allocate(17);
  pool.deallocate(a, 17);
  EXPECT_EQ(pool.allocate(32), a);
  // A genuinely different size draws from a different class.
  void* b = pool.allocate(64);
  EXPECT_NE(b, a);
  pool.deallocate(b, 64);
}

TEST(PoolResource, CarvedBytesPlateauAtTheHighWater) {
  PoolResource pool;
  std::vector<void*> live;
  for (int i = 0; i < 500; ++i) live.push_back(pool.allocate(48));
  const std::size_t highWater = pool.bytesCarved();
  for (void* p : live) pool.deallocate(p, 48);
  live.clear();
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 500; ++i) live.push_back(pool.allocate(48));
    for (void* p : live) pool.deallocate(p, 48);
    live.clear();
  }
  EXPECT_EQ(pool.bytesCarved(), highWater)
      << "steady-state reuse must not grow the pool";
}

TEST(PoolResource, OversizedRequestsFallThroughToTheHeap) {
  PoolResource pool;
  const std::size_t before = pool.bytesCarved();
  void* big = pool.allocate(64 * 1024);  // hash-bucket-array territory
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(pool.bytesCarved(), before) << "oversized must bypass the pool";
  static_cast<std::uint8_t*>(big)[0] = 1;  // must be writable
  pool.deallocate(big, 64 * 1024);
}

TEST(PoolAllocator, NodeContainersReachAllocFreeSteadyState) {
  PoolResource pool;
  std::map<int, std::uint64_t, std::less<>,
           PoolAllocator<std::pair<const int, std::uint64_t>>>
      m{PoolAllocator<std::pair<const int, std::uint64_t>>(&pool)};
  for (int i = 0; i < 300; ++i) m[i] = static_cast<std::uint64_t>(i);
  m.clear();
  const std::size_t highWater = pool.bytesCarved();
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 300; ++i) m[i] = static_cast<std::uint64_t>(i * i);
    EXPECT_EQ(m.size(), 300u);
    m.clear();
  }
  EXPECT_EQ(pool.bytesCarved(), highWater)
      << "a reused pooled map must recycle its own nodes";
}

TEST(PoolAllocator, ContainersSharingAResourceRecycleEachOthersNodes) {
  PoolResource pool;
  using Alloc = PoolAllocator<int>;
  {
    std::list<int, Alloc> first{Alloc(&pool)};
    for (int i = 0; i < 100; ++i) first.push_back(i);
  }  // all 100 nodes return to the pool
  const std::size_t carved = pool.bytesCarved();
  std::list<int, Alloc> second{Alloc(&pool)};
  for (int i = 0; i < 100; ++i) second.push_back(i);
  EXPECT_EQ(pool.bytesCarved(), carved)
      << "same node size from a sibling container must be recycled";
}

TEST(PoolAllocator, EqualityFollowsTheResource) {
  PoolResource a;
  PoolResource b;
  PoolAllocator<int> pa(&a);
  PoolAllocator<long> paLong(&a);
  PoolAllocator<int> pb(&b);
  EXPECT_TRUE(pa == paLong);
  EXPECT_FALSE(pa == pb);
  EXPECT_TRUE(pa != pb);
}

}  // namespace
}  // namespace lcdc::common
