// The campaign subsystem's contract tests:
//
//   * the work-stealing pool runs every task (including tasks submitted
//     from inside tasks) and survives reuse across waves;
//   * sub-run derivation is a pure function of (master seed, index);
//   * the mixed campaign covers all 14 transaction cases of Section 2.3
//     with zero false positives on the faithful protocol;
//   * the aggregated report is byte-identical for any --jobs value (the
//     determinism guarantee CI leans on);
//   * the delta-debugging minimizer shrinks a failing schedule while
//     preserving the exact failure signature, and the archived minimal
//     trace re-verifies offline with the same checker.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>

#include "backend/backend.hpp"
#include "campaign/campaign.hpp"
#include "campaign/minimize.hpp"
#include "common/thread_pool.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"

namespace lcdc {
namespace {

TEST(ThreadPool, RunsEveryTaskAcrossWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 300);
  EXPECT_EQ(pool.stats().tasksExecuted, 300u);
}

TEST(ThreadPool, TasksMaySubmitSubtasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &counter] {
      for (int j = 0; j < 5; ++j) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  pool.wait();  // must cover the nested submissions too
  EXPECT_EQ(counter.load(), 40);
}

TEST(Campaign, DeriveCaseIsPureFunctionOfIndex) {
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 99;
  for (const std::uint64_t i : {0ULL, 1ULL, 17ULL}) {
    const campaign::CaseSpec a = campaign::deriveCase(cfg, i);
    const campaign::CaseSpec b = campaign::deriveCase(cfg, i);
    EXPECT_EQ(a.description, b.description);
    ASSERT_EQ(a.programs.size(), b.programs.size());
    EXPECT_EQ(campaign::totalSteps(a), campaign::totalSteps(b));
    EXPECT_EQ(a.sys.seed, b.sys.seed);
  }
  // Distinct indices must not collide (distinct derived sim seeds).
  const campaign::CaseSpec a = campaign::deriveCase(cfg, 2);
  const campaign::CaseSpec b = campaign::deriveCase(cfg, 3);
  EXPECT_NE(a.sys.seed, b.sys.seed);
}

TEST(Campaign, MixedCampaignCoversAllTransactionCasesCleanly) {
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 1;
  cfg.seeds = 24;
  cfg.jobs = 4;
  cfg.minimize = false;
  const campaign::CampaignResult r = campaign::run(cfg);
  EXPECT_EQ(r.seedsRun, 24u);
  EXPECT_TRUE(r.failures.empty())
      << "false positive: " << r.failures.front().signature << " — "
      << r.failures.front().detail;
  EXPECT_TRUE(r.coverage.transactionCasesComplete()) << r.coverage.report();
  // The extension paths must be exercised too.
  EXPECT_GT(r.coverage.count(campaign::Point::PutShared), 0u);
  EXPECT_GT(r.coverage.count(campaign::Point::DeadlockResolved), 0u);
  EXPECT_GT(r.coverage.count(campaign::Point::ForwardedLoad), 0u);
}

TEST(Campaign, ReportIsByteIdenticalAcrossJobCounts) {
  // Clean campaign: coverage tables and totals must fold identically.
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 42;
  cfg.seeds = 16;
  cfg.minimize = false;
  cfg.jobs = 1;
  const std::string r1 = campaign::run(cfg).report();
  cfg.jobs = 4;
  const std::string r4 = campaign::run(cfg).report();
  EXPECT_EQ(r1, r4);

  // Failing campaign: the failure *set* (indices, signatures, details)
  // must also be order-independent.
  campaign::CampaignConfig bad;
  bad.masterSeed = 7;
  bad.seeds = 5;
  bad.mutant = Mutant::NoBusyNack;
  bad.minimize = false;
  bad.jobs = 1;
  const campaign::CampaignResult b1 = campaign::run(bad);
  bad.jobs = 3;
  const campaign::CampaignResult b3 = campaign::run(bad);
  ASSERT_FALSE(b1.failures.empty());
  ASSERT_EQ(b1.failures.size(), b3.failures.size());
  for (std::size_t i = 0; i < b1.failures.size(); ++i) {
    EXPECT_EQ(b1.failures[i].index, b3.failures[i].index);
    EXPECT_EQ(b1.failures[i].signature, b3.failures[i].signature);
    EXPECT_EQ(b1.failures[i].detail, b3.failures[i].detail);
  }
  EXPECT_EQ(b1.report(), b3.report());
}

TEST(Campaign, McStageReportsAndStaysByteIdenticalAcrossJobs) {
  // The optional exhaustive stage joins the determinism contract: its
  // verdict line in the report is jobs-invariant (it deliberately omits
  // violation text, whose symmetry representative can race).
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 3;
  cfg.seeds = 4;
  cfg.minimize = false;
  cfg.mcStage = true;
  cfg.jobs = 1;
  const campaign::CampaignResult a = campaign::run(cfg);
  cfg.jobs = 4;
  const campaign::CampaignResult b = campaign::run(cfg);
  EXPECT_TRUE(a.mcStage.ran);
  EXPECT_TRUE(a.mcStage.ok);
  EXPECT_EQ(a.mcStage.states, b.mcStage.states);
  EXPECT_EQ(a.report(), b.report());
  EXPECT_NE(a.report().find("mc stage:"), std::string::npos);

  // A mutant campaign fails at the MC stage even when every seeded run is
  // clean — the exhaustive stage sees schedules the sweep missed.
  campaign::CampaignConfig bad = cfg;
  bad.mutant = Mutant::SkipInvAckWait;
  bad.seeds = 1;
  const campaign::CampaignResult m = campaign::run(bad);
  EXPECT_TRUE(m.mcStage.ran);
  EXPECT_FALSE(m.mcStage.ok);
  EXPECT_FALSE(m.ok());
}

TEST(Campaign, UntilCoverageStopsAtAWaveBoundaryDeterministically) {
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 3;
  cfg.seeds = 512;
  cfg.untilCoverage = true;
  cfg.minimize = false;
  cfg.jobs = 2;
  const campaign::CampaignResult a = campaign::run(cfg);
  cfg.jobs = 5;
  const campaign::CampaignResult b = campaign::run(cfg);
  EXPECT_TRUE(a.coverage.transactionCasesComplete());
  EXPECT_LT(a.seedsRun, 512u) << "coverage should complete well before 512";
  EXPECT_EQ(a.seedsRun, b.seedsRun);
  EXPECT_EQ(a.report(), b.report());
}

/// First campaign sub-run that fails with a checker signature.
campaign::CaseSpec findCheckerFailure(const campaign::CampaignConfig& cfg,
                                      std::string* signature) {
  for (std::uint64_t i = 0; i < cfg.seeds; ++i) {
    campaign::CaseSpec spec = campaign::deriveCase(cfg, i);
    const campaign::CaseOutcome o =
        campaign::runCase(spec, cfg.maxEventsPerRun);
    if (o.signature.rfind("checker:", 0) == 0) {
      *signature = o.signature;
      return spec;
    }
  }
  ADD_FAILURE() << "no checker-detected failure in " << cfg.seeds << " seeds";
  return campaign::deriveCase(cfg, 0);
}

TEST(Minimizer, ShrinksWhilePreservingTheFailureSignature) {
  campaign::CampaignConfig cfg;
  cfg.mutant = Mutant::ForwardStaleValue;
  cfg.seeds = 16;
  std::string signature;
  const campaign::CaseSpec failing = findCheckerFailure(cfg, &signature);
  ASSERT_FALSE(signature.empty());

  campaign::MinimizeOptions opts;
  opts.maxAttempts = 150;
  const campaign::MinimizeResult mr =
      campaign::shrink(failing, signature, opts);
  EXPECT_EQ(mr.signature, signature);
  EXPECT_LE(mr.stepsAfter, mr.stepsBefore);
  EXPECT_TRUE(mr.reduced()) << "nothing shrank within the probe budget";
  // The guarantee that matters: the minimized case still trips the same
  // checker when re-executed from scratch.
  const campaign::CaseOutcome again =
      campaign::runCase(mr.spec, cfg.maxEventsPerRun);
  EXPECT_EQ(again.signature, signature);
}

TEST(Minimizer, MinimizedTraceReVerifiesOfflineWithTheSameChecker) {
  campaign::CampaignConfig cfg;
  cfg.mutant = Mutant::ForwardStaleValue;
  cfg.seeds = 16;
  std::string signature;
  const campaign::CaseSpec failing = findCheckerFailure(cfg, &signature);
  ASSERT_FALSE(signature.empty());

  campaign::MinimizeOptions opts;
  opts.maxAttempts = 120;
  const campaign::MinimizeResult mr =
      campaign::shrink(failing, signature, opts);

  trace::Trace minTrace;
  (void)campaign::runCase(mr.spec, opts.maxEventsPerRun, &minTrace);
  const std::string path =
      (std::filesystem::temp_directory_path() / "lcdc_campaign_min.trace")
          .string();
  trace::saveFileWithMeta(
      minTrace, path,
      {"campaign test reproducer", "signature: " + signature});
  const trace::Trace loaded = trace::loadFile(path);
  std::remove(path.c_str());

  const verify::CheckReport report =
      verify::checkAll(loaded, proto::verifyConfigFor(mr.spec.sys));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ("checker:" + report.primaryCheck(), signature);
}

TEST(Campaign, ArchivesFailingAndMinimizedTraces) {
  const std::string outDir =
      (std::filesystem::temp_directory_path() / "lcdc_campaign_out").string();
  std::filesystem::remove_all(outDir);

  campaign::CampaignConfig cfg;
  cfg.mutant = Mutant::ForwardStaleValue;
  cfg.seeds = 6;
  cfg.jobs = 2;
  cfg.minimize = true;
  cfg.maxMinimized = 1;
  cfg.minimizeAttempts = 100;
  cfg.outDir = outDir;
  const campaign::CampaignResult r = campaign::run(cfg);
  ASSERT_FALSE(r.failures.empty());
  const campaign::Failure& f = r.failures.front();
  EXPECT_FALSE(f.tracePath.empty());
  EXPECT_TRUE(std::filesystem::exists(f.tracePath));
  if (!f.minimizedPath.empty()) {
    EXPECT_TRUE(std::filesystem::exists(f.minimizedPath));
    // Archived minimized traces must parse back (comments skipped).
    const trace::Trace t = trace::loadFile(f.minimizedPath);
    EXPECT_FALSE(t.operations().empty() && t.serializations().empty());
  }
  std::filesystem::remove_all(outDir);
}

}  // namespace
}  // namespace lcdc
