// The coverage-guided fuzz stage: corpus lifecycle, determinism, and the
// time-to-detection battery.
//
// Three contracts under test:
//   * the corpus is a durable, versioned artifact — entries round-trip
//     byte-identically, resuming accumulates instead of resetting, and
//     anything malformed (corrupt bytes, a future format version, a corpus
//     recorded for another backend) is rejected with a clean SimError, not
//     an invariant abort;
//   * the fuzz stage inherits the campaign's determinism guarantee: the
//     report, the failure set and the corpus itself are byte-identical for
//     any --jobs value, and every saved entry replays to the same outcome;
//   * it finds bugs: for every seeded mutant of all three backends the
//     stage reports a first failure within a bounded budget, naming the
//     same claim/lemma a random campaign blames.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/corpus.hpp"
#include "campaign/fuzz.hpp"
#include "campaign/mutate.hpp"
#include "common/expect.hpp"

namespace lcdc {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("lcdc-fuzz-" + tag + "-" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  const std::string path;
};

campaign::CampaignConfig fuzzConfig(ProtocolKind protocol,
                                    std::uint64_t budget) {
  campaign::CampaignConfig cfg;
  cfg.protocol = protocol;
  cfg.fuzz = true;
  cfg.seeds = budget;
  cfg.masterSeed = 77;
  cfg.minimize = false;
  return cfg;
}

// -- corpus lifecycle --------------------------------------------------------

TEST(Corpus, EntriesRoundTripByteIdentically) {
  for (const ProtocolKind k :
       {ProtocolKind::Directory, ProtocolKind::Bus, ProtocolKind::Tardis}) {
    campaign::CampaignConfig cfg;
    cfg.protocol = k;
    cfg.masterSeed = 5;
    for (std::uint64_t i = 0; i < 4; ++i) {
      const campaign::CaseSpec spec = campaign::deriveCase(cfg, i);
      const std::string text = campaign::serializeEntry(spec);
      const campaign::CaseSpec back = campaign::parseEntry(text);
      EXPECT_EQ(campaign::serializeEntry(back), text);
      EXPECT_EQ(campaign::entryId(back), campaign::entryId(spec));
      EXPECT_EQ(back.sys.protocol, k);
      EXPECT_EQ(back.programs.size(), spec.programs.size());
      EXPECT_EQ(back.description, spec.description);
    }
  }
}

TEST(Corpus, RoundTripPreservesTheReplayedOutcome) {
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 9;
  const campaign::CaseSpec spec = campaign::deriveCase(cfg, 3);
  const campaign::CaseSpec back =
      campaign::parseEntry(campaign::serializeEntry(spec));
  const campaign::CaseOutcome a = campaign::runCase(spec, 5'000'000);
  const campaign::CaseOutcome b = campaign::runCase(back, 5'000'000);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.opsBound, b.opsBound);
  EXPECT_EQ(a.txnsSerialized, b.txnsSerialized);
  EXPECT_EQ(a.coverage.counts, b.coverage.counts);
}

TEST(Corpus, MalformedEntriesRaiseSimErrorNotInvariantAbort) {
  const auto rejects = [](const std::string& text) {
    EXPECT_THROW((void)campaign::parseEntry(text), SimError) << text;
  };
  rejects("");                      // empty
  rejects("not a corpus file\n");   // bad magic
  rejects("lcdc-corpus v999\n");    // future format version
  campaign::CampaignConfig cfg;
  const std::string good =
      campaign::serializeEntry(campaign::deriveCase(cfg, 0));
  rejects(good.substr(0, good.size() / 2));        // truncated mid-program
  rejects("lcdc-corpus v1\nwobble 3\nend\n");      // unknown line
  std::string garbled = good;
  garbled.replace(garbled.find("sys procs="), 10, "sys procs=x");
  rejects(garbled);                                // non-numeric field
}

TEST(Corpus, SaveLoadRoundTripsThroughADirectory) {
  TempDir dir("saveload");
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 21;
  std::vector<std::string> ids;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const campaign::CaseSpec spec = campaign::deriveCase(cfg, i);
    campaign::saveEntry(spec, dir.path);
    campaign::saveEntry(spec, dir.path);  // idempotent: same content hash
    ids.push_back(campaign::entryId(spec));
  }
  const std::vector<campaign::CaseSpec> corpus =
      campaign::loadCorpus(dir.path);
  ASSERT_EQ(corpus.size(), 5u);
  // Load order is sorted-filename order; ids must match as a set.
  std::set<std::string> expect(ids.begin(), ids.end());
  std::set<std::string> got;
  for (const auto& spec : corpus) got.insert(campaign::entryId(spec));
  EXPECT_EQ(got, expect);

  // A corrupt file in the directory fails the load with a clean SimError
  // naming the file.
  const std::string bad = dir.path + "/c-zzzz.case";
  std::ofstream(bad) << "lcdc-corpus v1\ngarbage\n";
  try {
    (void)campaign::loadCorpus(dir.path);
    FAIL() << "corrupt entry not rejected";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("c-zzzz.case"), std::string::npos);
  }
}

TEST(Corpus, MissingDirectoryIsAnEmptyCorpus) {
  EXPECT_TRUE(campaign::loadCorpus("/nonexistent/lcdc-fuzz-dir").empty());
  EXPECT_TRUE(campaign::loadCorpus("").empty());
}

TEST(Fuzz, BackendMismatchedCorpusRejectedCleanly) {
  TempDir dir("mismatch");
  campaign::CampaignConfig dirCfg;  // directory campaign
  campaign::saveEntry(campaign::deriveCase(dirCfg, 0), dir.path);
  campaign::CampaignConfig cfg = fuzzConfig(ProtocolKind::Tardis, 8);
  cfg.corpusDir = dir.path;
  EXPECT_THROW((void)campaign::run(cfg), SimError);
}

TEST(Fuzz, ResumeAccumulatesInsteadOfResetting) {
  TempDir dir("resume");
  campaign::CampaignConfig first = fuzzConfig(ProtocolKind::Directory, 96);
  first.corpusDir = dir.path;
  const campaign::CampaignResult r1 = campaign::run(first);
  EXPECT_EQ(r1.fuzz.corpusLoaded, 0u);
  ASSERT_GT(r1.fuzz.corpusAdded, 0u);
  EXPECT_EQ(r1.fuzz.corpusSize, r1.fuzz.corpusAdded);

  // Second session, different master seed, same corpus: everything the
  // first session saved is loaded and replayed, and the corpus only grows.
  campaign::CampaignConfig second = fuzzConfig(ProtocolKind::Directory, 96);
  second.corpusDir = dir.path;
  second.masterSeed = 1234;
  const campaign::CampaignResult r2 = campaign::run(second);
  EXPECT_EQ(r2.fuzz.corpusLoaded, r1.fuzz.corpusSize);
  EXPECT_GE(r2.fuzz.corpusSize, r2.fuzz.corpusLoaded);
  EXPECT_EQ(r2.fuzz.corpusSize,
            r2.fuzz.corpusLoaded + r2.fuzz.corpusAdded);
  EXPECT_EQ(campaign::loadCorpus(dir.path).size(), r2.fuzz.corpusSize);
}

// -- determinism -------------------------------------------------------------

TEST(Fuzz, ReportAndCorpusAreByteIdenticalAcrossJobCounts) {
  TempDir d1("jobs1");
  TempDir d3("jobs3");
  campaign::CampaignConfig cfg = fuzzConfig(ProtocolKind::Directory, 128);
  cfg.corpusDir = d1.path;
  cfg.jobs = 1;
  const campaign::CampaignResult r1 = campaign::run(cfg);
  cfg.corpusDir = d3.path;
  cfg.jobs = 3;
  const campaign::CampaignResult r3 = campaign::run(cfg);

  EXPECT_EQ(r1.report(), r3.report());
  EXPECT_EQ(r1.fuzz.corpusSize, r3.fuzz.corpusSize);
  EXPECT_EQ(r1.fuzz.features, r3.fuzz.features);

  // The corpora are file-for-file identical (content-addressed names).
  const auto names = [](const std::string& dir) {
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(dir)) {
      out.push_back(e.path().filename().string());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(names(d1.path), names(d3.path));
}

TEST(Fuzz, EverySavedEntryReplaysDeterministically) {
  TempDir dir("replay");
  campaign::CampaignConfig cfg = fuzzConfig(ProtocolKind::Tardis, 64);
  cfg.corpusDir = dir.path;
  (void)campaign::run(cfg);
  const std::vector<campaign::CaseSpec> corpus =
      campaign::loadCorpus(dir.path);
  ASSERT_FALSE(corpus.empty());
  for (const campaign::CaseSpec& spec : corpus) {
    const campaign::CaseOutcome a = campaign::runCase(spec, 5'000'000);
    const campaign::CaseOutcome b = campaign::runCase(spec, 5'000'000);
    EXPECT_EQ(a.signature, b.signature);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.opsBound, b.opsBound);
    EXPECT_EQ(a.txnsSerialized, b.txnsSerialized);
    EXPECT_EQ(a.coverage.counts, b.coverage.counts);
  }
}

// -- mutation engine ---------------------------------------------------------

TEST(Mutate, ChildrenStayWellFormed) {
  campaign::CampaignConfig cfg;
  cfg.masterSeed = 31;
  campaign::MutationConfig mcfg;
  Rng rng(99);
  campaign::CaseSpec parent = campaign::deriveCase(cfg, 0);
  for (int gen = 0; gen < 40; ++gen) {
    campaign::CaseSpec child;
    campaign::mutateInto(mcfg, parent, rng, child);
    ASSERT_EQ(child.programs.size(), child.sys.numProcessors);
    EXPECT_GE(child.sys.maxLatency, child.sys.minLatency);
    // Store values stay globally unique (the SC checker's load
    // attribution depends on it).
    std::set<std::uint64_t> values;
    for (const auto& prog : child.programs) {
      for (const auto& st : prog.steps) {
        if (st.kind == workload::StepKind::Store) {
          EXPECT_TRUE(values.insert(st.storeValue).second)
              << "duplicate store value after mutation";
        }
      }
    }
    // Mutated inputs are tagged with the applied operators.
    EXPECT_NE(child.description.find(" ~"), std::string::npos);
    // Serializable: every child is corpus-admissible.
    EXPECT_EQ(campaign::serializeEntry(
                  campaign::parseEntry(campaign::serializeEntry(child))),
              campaign::serializeEntry(child));
    parent = child;  // chain generations
  }
}

TEST(Mutate, BusChildrenNeverFlipNetworkMode) {
  campaign::CampaignConfig cfg;
  cfg.protocol = ProtocolKind::Bus;
  campaign::MutationConfig mcfg;
  mcfg.protocol = ProtocolKind::Bus;
  mcfg.allowModeFlips = false;
  Rng rng(7);
  const campaign::CaseSpec parent = campaign::deriveCase(cfg, 0);
  for (int gen = 0; gen < 30; ++gen) {
    campaign::CaseSpec child;
    campaign::mutateInto(mcfg, parent, rng, child);
    EXPECT_EQ(child.netMode, net::Network::Mode::RandomLatency);
  }
}

// -- time-to-detection battery -----------------------------------------------

/// Every seeded mutant each backend implements, with a budget that the
/// fuzz stage must catch it within.  Budgets are generous multiples of the
/// observed detection times (most mutants fall in the first wave).
struct MutantCase {
  ProtocolKind protocol;
  Mutant mutant;
  std::uint64_t budget;
};

const MutantCase kBattery[] = {
    {ProtocolKind::Directory, Mutant::SkipInvAckWait, 192},
    {ProtocolKind::Directory, Mutant::StaleDataFromHome, 192},
    {ProtocolKind::Directory, Mutant::IgnoreInvalidation, 192},
    {ProtocolKind::Directory, Mutant::ForwardStaleValue, 192},
    {ProtocolKind::Directory, Mutant::NoBusyNack, 192},
    {ProtocolKind::Directory, Mutant::NoDeadlockDetection, 384},
    {ProtocolKind::Bus, Mutant::IgnoreInvalidation, 192},
    {ProtocolKind::Tardis, Mutant::DropLeaseBump, 192},
};

class FuzzDetection : public ::testing::TestWithParam<MutantCase> {};

TEST_P(FuzzDetection, CatchesTheMutantWithinBudgetNamingTheSameClaim) {
  const MutantCase& mc = GetParam();

  campaign::CampaignConfig fuzz = fuzzConfig(mc.protocol, mc.budget);
  fuzz.mutant = mc.mutant;
  fuzz.fuzzStopOnFailure = true;
  const campaign::CampaignResult rf = campaign::run(fuzz);
  ASSERT_NE(rf.fuzz.firstFailureExecution, 0u)
      << "fuzz stage missed mutant " << toString(mc.mutant) << " in "
      << mc.budget << " executions";
  ASSERT_FALSE(rf.failures.empty());

  // A random campaign with the same budget blames the same claim/lemma:
  // the fuzzer accelerates detection, it does not change the verdict.
  campaign::CampaignConfig rnd;
  rnd.protocol = mc.protocol;
  rnd.mutant = mc.mutant;
  rnd.seeds = mc.budget;
  rnd.masterSeed = 77;
  rnd.minimize = false;
  const campaign::CampaignResult rr = campaign::run(rnd);
  ASSERT_FALSE(rr.failures.empty())
      << "random baseline missed mutant " << toString(mc.mutant);
  std::set<std::string> randomSignatures;
  for (const auto& f : rr.failures) randomSignatures.insert(f.signature);
  std::set<std::string> fuzzSignatures;
  for (const auto& f : rf.failures) fuzzSignatures.insert(f.signature);
  std::set<std::string> common;
  std::set_intersection(fuzzSignatures.begin(), fuzzSignatures.end(),
                        randomSignatures.begin(), randomSignatures.end(),
                        std::inserter(common, common.begin()));
  EXPECT_FALSE(common.empty())
      << "fuzz and random campaigns blame disjoint claims for "
      << toString(mc.mutant);
}

std::string batteryName(const ::testing::TestParamInfo<MutantCase>& info) {
  std::string name = std::string(toString(info.param.protocol)) + "_" +
                     toString(info.param.mutant);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllMutants, FuzzDetection,
                         ::testing::ValuesIn(kBattery), batteryName);

// -- backend-aware --until-coverage ------------------------------------------

TEST(Fuzz, UntilCoverageUsesTheBackendsReachableTarget) {
  // A bus campaign can genuinely complete: 4 reachable cases, not 15.
  campaign::CampaignConfig cfg = fuzzConfig(ProtocolKind::Bus, 512);
  cfg.untilCoverage = true;
  const campaign::CampaignResult r = campaign::run(cfg);
  EXPECT_TRUE(r.coverage.transactionCasesComplete(ProtocolKind::Bus));
  EXPECT_LT(r.fuzz.executions, 512u)
      << "bus coverage target should stop the budget early";
  EXPECT_FALSE(r.coverage.transactionCasesComplete(ProtocolKind::Directory));
}

}  // namespace
}  // namespace lcdc
