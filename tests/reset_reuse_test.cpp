// Engine-reuse equivalence: System::reset(seed) + StreamCheckerSet::reset
// followed by a run must be byte-identical to constructing a fresh System
// and checker set with the same seed — the contract the campaign's
// per-thread WorkerEngine reuse (campaign.cpp) rests on.  One persistent
// engine replays a chain of sub-runs with differing seeds, programs and
// per-seed shapes drawn from the seed-equivalence matrix, and every
// artifact fingerprint (trace text, run result, network counters, checker
// verdict) must match its freshly-constructed twin.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "backend/backend.hpp"
#include "run_fingerprint.hpp"

namespace lcdc {
namespace {

using lcdc::testing::MatrixCell;

class ResetReuseCell : public ::testing::TestWithParam<MatrixCell> {};

TEST_P(ResetReuseCell, ResetThenRunEqualsConstructThenRun) {
  const MatrixCell cell = GetParam();

  // The persistent engine.  The matrix varies topology with the seed, so
  // pick one seed's shape and chain every sub-run that shares it — the
  // campaign reuses a System only across identically-shaped specs too.
  const SystemConfig shape = lcdc::testing::matrixConfig(2);
  trace::Trace trace;
  verify::StreamCheckerSet checkers(proto::verifyConfigFor(shape));
  proto::TeeSink tee{&trace, &checkers};
  std::optional<sim::System> reused;

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SystemConfig sys = shape;
    sys.seed = 0x5EEDULL ^ (seed * 0x9E3779B97F4A7C15ULL);
    const workload::WorkloadConfig w =
        lcdc::testing::matrixWorkload(sys, seed);
    const auto progs = workload::make(cell.kind, w);

    const std::uint64_t fresh =
        lcdc::testing::runFingerprint(sys, progs, cell.mode);

    if (!reused) {
      reused.emplace(sys, tee, cell.mode);
    } else {
      reused->reset(sys.seed);
    }
    trace.clear();
    checkers.reset(proto::verifyConfigFor(sys));
    for (NodeId p = 0; p < sys.numProcessors; ++p) {
      reused->setProgram(p, progs[p]);
    }
    const sim::RunResult r = reused->run();
    checkers.finish();
    const std::uint64_t replay = lcdc::testing::artifactFingerprint(
        trace, r, reused->network().stats(), checkers.report());

    EXPECT_EQ(replay, fresh)
        << "sub-run " << seed << " of " << workload::toString(cell.kind)
        << " diverged after reset";
  }
}

// Observer-lifecycle extension: one persistent TeeSink + StreamCheckerSet
// reused across cycles whose *topologies differ* (the matrix varies
// processors, directories, capacity, TSO depth with the cycle) and one of
// which injects a value-corrupting mutant — the reused pipeline's verdict,
// violation for violation, must match a freshly constructed engine's.
// This is the contract the dsm certifier and the campaign's worker reuse
// both rest on: reset() really does forget the previous stream.
TEST(ObserverLifecycle, PersistentTeeAcrossShapesAndMutants) {
  trace::Trace trace;
  proto::TeeSink tee;
  std::optional<verify::StreamCheckerSet> checkers;

  for (std::uint64_t cycle = 0; cycle < 8; ++cycle) {
    SystemConfig sys = lcdc::testing::matrixConfig(cycle);
    // Two mutant cycles mid-chain: their violating reports must not bleed
    // into the clean cycles that follow.
    const bool mutated = cycle == 2 || cycle == 5;
    if (mutated) sys.proto.mutant = Mutant::ForwardStaleValue;
    const workload::WorkloadConfig w =
        lcdc::testing::matrixWorkload(sys, cycle);
    const auto progs = workload::make(
        mutated ? workload::Kind::Hot : workload::Kind::Uniform, w);
    const verify::VerifyConfig vc = proto::verifyConfigFor(sys);

    // Freshly constructed engines.
    trace::Trace freshTrace;
    verify::StreamCheckerSet freshCheckers(vc);
    proto::TeeSink freshTee{&freshTrace, &freshCheckers};
    sim::System freshSys(sys, freshTee);
    for (NodeId p = 0; p < sys.numProcessors; ++p) {
      freshSys.setProgram(p, progs[p]);
    }
    const sim::RunResult freshRun = freshSys.run();
    freshCheckers.finish();

    // The persistent pipeline: TeeSink re-wired, checkers reset to the new
    // (different!) shape, trace cleared.  The System itself is fresh — a
    // topology change requires that — the observers are what persist.
    tee.clear();
    trace.clear();
    if (!checkers) {
      checkers.emplace(vc);
    } else {
      checkers->reset(vc);
    }
    tee.attach(trace);
    tee.attach(*checkers);
    sim::System reusedSys(sys, tee);
    for (NodeId p = 0; p < sys.numProcessors; ++p) {
      reusedSys.setProgram(p, progs[p]);
    }
    const sim::RunResult reusedRun = reusedSys.run();
    checkers->finish();

    EXPECT_EQ(reusedRun.outcome, freshRun.outcome) << "cycle " << cycle;
    const verify::CheckReport& a = checkers->report();
    const verify::CheckReport& b = freshCheckers.report();
    EXPECT_EQ(a.summary(), b.summary()) << "cycle " << cycle;
    ASSERT_EQ(a.violations.size(), b.violations.size()) << "cycle " << cycle;
    for (std::size_t v = 0; v < a.violations.size(); ++v) {
      EXPECT_EQ(a.violations[v].check, b.violations[v].check);
      EXPECT_EQ(a.violations[v].detail, b.violations[v].detail);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, ResetReuseCell,
    ::testing::ValuesIn(lcdc::testing::fingerprintMatrix()),
    [](const ::testing::TestParamInfo<MatrixCell>& pinfo) {
      std::string name = workload::toString(pinfo.param.kind);
      name += pinfo.param.mode == net::Network::Mode::Fifo ? "Fifo" : "Rand";
      return name;
    });

}  // namespace
}  // namespace lcdc
