// Engine-reuse equivalence: System::reset(seed) + StreamCheckerSet::reset
// followed by a run must be byte-identical to constructing a fresh System
// and checker set with the same seed — the contract the campaign's
// per-thread WorkerEngine reuse (campaign.cpp) rests on.  One persistent
// engine replays a chain of sub-runs with differing seeds, programs and
// per-seed shapes drawn from the seed-equivalence matrix, and every
// artifact fingerprint (trace text, run result, network counters, checker
// verdict) must match its freshly-constructed twin.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "run_fingerprint.hpp"

namespace lcdc {
namespace {

using lcdc::testing::MatrixCell;

class ResetReuseCell : public ::testing::TestWithParam<MatrixCell> {};

TEST_P(ResetReuseCell, ResetThenRunEqualsConstructThenRun) {
  const MatrixCell cell = GetParam();

  // The persistent engine.  The matrix varies topology with the seed, so
  // pick one seed's shape and chain every sub-run that shares it — the
  // campaign reuses a System only across identically-shaped specs too.
  const SystemConfig shape = lcdc::testing::matrixConfig(2);
  trace::Trace trace;
  verify::StreamCheckerSet checkers(verify::VerifyConfig::fromSystem(shape));
  proto::TeeSink tee{&trace, &checkers};
  std::optional<sim::System> reused;

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SystemConfig sys = shape;
    sys.seed = 0x5EEDULL ^ (seed * 0x9E3779B97F4A7C15ULL);
    const workload::WorkloadConfig w =
        lcdc::testing::matrixWorkload(sys, seed);
    const auto progs = workload::make(cell.kind, w);

    const std::uint64_t fresh =
        lcdc::testing::runFingerprint(sys, progs, cell.mode);

    if (!reused) {
      reused.emplace(sys, tee, cell.mode);
    } else {
      reused->reset(sys.seed);
    }
    trace.clear();
    checkers.reset(verify::VerifyConfig::fromSystem(sys));
    for (NodeId p = 0; p < sys.numProcessors; ++p) {
      reused->setProgram(p, progs[p]);
    }
    const sim::RunResult r = reused->run();
    checkers.finish();
    const std::uint64_t replay = lcdc::testing::artifactFingerprint(
        trace, r, reused->network().stats(), checkers.report());

    EXPECT_EQ(replay, fresh)
        << "sub-run " << seed << " of " << workload::toString(cell.kind)
        << " diverged after reset";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, ResetReuseCell,
    ::testing::ValuesIn(lcdc::testing::fingerprintMatrix()),
    [](const ::testing::TestParamInfo<MatrixCell>& pinfo) {
      std::string name = workload::toString(pinfo.param.kind);
      name += pinfo.param.mode == net::Network::Mode::Fifo ? "Fifo" : "Rand";
      return name;
    });

}  // namespace
}  // namespace lcdc
