// Shared helpers for the test suites: run a configured system over a
// workload, collect the trace, and return both the run result and the
// verification report.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "backend/backend.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

namespace lcdc::test {

struct RunOutput {
  sim::RunResult result;
  verify::CheckReport report;
  proto::DirStats dirStats;
  proto::CacheStats cacheStats;
};

/// Run `programs` on a system built from `cfg`, verify the trace, and
/// return everything a test might want to assert on.
inline RunOutput runVerified(const SystemConfig& cfg,
                             const std::vector<workload::Program>& programs,
                             trace::Trace* traceOut = nullptr) {
  trace::Trace localTrace;
  trace::Trace& trace = traceOut ? *traceOut : localTrace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors && p < programs.size(); ++p) {
    system.setProgram(p, programs[p]);
  }
  RunOutput out;
  out.result = system.run();
  out.report = verify::checkAll(trace, proto::verifyConfigFor(cfg));
  out.dirStats = system.aggregateDirStats();
  out.cacheStats = system.aggregateCacheStats();
  return out;
}

/// Workload config matching a system config.
inline workload::WorkloadConfig workloadFor(const SystemConfig& cfg,
                                            std::uint64_t ops,
                                            std::uint64_t seed) {
  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.proto.wordsPerBlock;
  w.opsPerProcessor = ops;
  w.seed = seed;
  return w;
}

}  // namespace lcdc::test
