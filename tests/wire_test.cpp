// Round-trip fuzz for the shared binary codec and the dsm wire format.
//
// The codec promises one byte-level definition of proto::Message and the
// EventSink record vocabulary, shared by the model checker's world blobs,
// archived binary traces, and the dsm wire frames.  The fuzz checks the
// property that makes that sharing safe: decode(encode(x)) re-encodes to
// the same bytes, for randomized values of every message field, every
// event record variant, and every frame type — plus the incremental
// FrameDecoder reassembling a frame stream from arbitrary split points,
// and the binary trace format round-tripping through the file layer's
// format autodetection.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "dsm/wire.hpp"
#include "proto/messages.hpp"
#include "sim/system.hpp"
#include "trace/codec.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "workload/generators.hpp"

namespace lcdc {
namespace {

using Bytes = std::vector<std::byte>;

// -- randomized values --------------------------------------------------------

std::uint64_t pick(std::mt19937_64& rng, std::uint64_t bound) {
  return rng() % bound;
}

BlockValue randomValue(std::mt19937_64& rng) {
  BlockValue v;
  const std::size_t words = pick(rng, 7);  // 0..6: inline and spilled
  for (std::size_t i = 0; i < words; ++i) v.push_back(rng());
  return v;
}

proto::Message randomMessage(std::mt19937_64& rng) {
  proto::Message m;
  m.type = static_cast<proto::MsgType>(pick(rng, proto::kNumMsgTypes));
  m.block = static_cast<BlockId>(pick(rng, 1u << 20));
  m.src = static_cast<NodeId>(pick(rng, 64));
  m.requester =
      pick(rng, 8) == 0 ? kNoNode : static_cast<NodeId>(pick(rng, 64));
  m.txn = pick(rng, 8) == 0 ? kNoTransaction : rng();
  m.serial = pick(rng, 100'000);
  m.data = randomValue(rng);
  const std::size_t invs = pick(rng, 10);  // crosses the inline capacity
  for (std::size_t i = 0; i < invs; ++i) {
    m.invTargets.push_back(static_cast<NodeId>(pick(rng, 64)));
  }
  m.ignoreBufferedInv = pick(rng, 2) != 0;
  m.closesTxn = pick(rng, 4) == 0 ? kNoTransaction : rng();
  m.closesSerial = pick(rng, 100'000);
  static constexpr NackKind kNacks[] = {NackKind::GetS_Busy,
                                        NackKind::GetX_Busy,
                                        NackKind::Upg_Exclusive,
                                        NackKind::Upg_Busy};
  m.nackKind = kNacks[pick(rng, 4)];
  m.nackedReq = static_cast<ReqType>(pick(rng, 4));
  const std::size_t stamps = pick(rng, 10);
  for (std::size_t i = 0; i < stamps; ++i) {
    m.stamps.push_back(
        proto::TsStamp{static_cast<NodeId>(pick(rng, 64)), rng() >> 16});
  }
  return m;
}

proto::TxnInfo randomTxnInfo(std::mt19937_64& rng) {
  static constexpr TxnKind kKinds[] = {
      TxnKind::GetS_Idle,      TxnKind::GetS_Shared,
      TxnKind::GetS_Exclusive, TxnKind::GetX_Idle,
      TxnKind::GetX_Shared,    TxnKind::GetX_Exclusive,
      TxnKind::Upg_Shared,     TxnKind::Wb_Exclusive,
      TxnKind::Wb_BusyShared,  TxnKind::Wb_BusyExclusive,
      TxnKind::Wb_BusyExclusiveSelf};
  proto::TxnInfo t;
  t.id = rng();
  t.serial = pick(rng, 100'000);
  t.kind = kKinds[pick(rng, std::size(kKinds))];
  t.block = static_cast<BlockId>(pick(rng, 1u << 16));
  t.requester = static_cast<NodeId>(pick(rng, 64));
  return t;
}

trace::EventRecord randomEvent(std::mt19937_64& rng) {
  const auto node = [&] { return static_cast<NodeId>(pick(rng, 64)); };
  const auto block = [&] { return static_cast<BlockId>(pick(rng, 1u << 16)); };
  const auto order = [&] { return rng() >> 20; };
  switch (pick(rng, 8)) {
    case 0:
      return trace::SerializeRecord{randomTxnInfo(rng), order()};
    case 1:
      return trace::ConvertRecord{rng(), randomTxnInfo(rng).kind, order()};
    case 2: {
      trace::StampRecord s;
      s.node = node();
      s.txn = rng();
      s.serial = pick(rng, 100'000);
      s.block = block();
      s.role = pick(rng, 2) == 0 ? proto::StampRole::Downgrade
                                 : proto::StampRole::Upgrade;
      s.ts = rng() >> 8;
      s.oldA = static_cast<AState>(pick(rng, 3));
      s.newA = static_cast<AState>(pick(rng, 3));
      s.order = order();
      return s;
    }
    case 3:
      return trace::ValueRecord{node(), rng(), block(), randomValue(rng),
                                order()};
    case 4: {
      proto::OpRecord op;
      op.proc = node();
      op.progIdx = pick(rng, 1u << 20);
      op.kind = pick(rng, 2) == 0 ? OpKind::Load : OpKind::Store;
      op.block = block();
      op.word = static_cast<WordIdx>(pick(rng, 8));
      op.value = rng();
      op.boundTxn = pick(rng, 5) == 0 ? kNoTransaction : rng();
      op.boundSerial = pick(rng, 100'000);
      op.ts = Timestamp{rng() >> 16, pick(rng, 1000), node()};
      op.forwarded = pick(rng, 2) != 0;
      op.order = order();
      return op;
    }
    case 5: {
      static constexpr NackKind kNacks[] = {NackKind::GetS_Busy,
                                            NackKind::GetX_Busy,
                                            NackKind::Upg_Exclusive,
                                            NackKind::Upg_Busy};
      return trace::NackRecord{node(), block(), kNacks[pick(rng, 4)],
                               order()};
    }
    case 6:
      return trace::PutSharedRecord{node(), block(), order()};
    default:
      return trace::DeadlockRecord{node(), block(), node(), order()};
  }
}

dsm::Frame randomFrame(std::mt19937_64& rng) {
  switch (pick(rng, 7)) {
    case 0: {
      dsm::HelloFrame h;
      h.role = static_cast<dsm::Role>(pick(rng, 3));
      h.sender = static_cast<std::uint32_t>(pick(rng, 64));
      h.nodes = static_cast<std::uint32_t>(1 + pick(rng, 16));
      h.config.numProcessors = static_cast<NodeId>(1 + pick(rng, 8));
      h.config.numDirectories = static_cast<NodeId>(1 + pick(rng, 8));
      h.config.numBlocks = static_cast<BlockId>(1 + pick(rng, 256));
      h.config.proto.wordsPerBlock = static_cast<WordIdx>(1 + pick(rng, 8));
      h.config.storeBufferDepth = static_cast<std::uint32_t>(pick(rng, 4));
      h.config.seed = rng();
      return h;
    }
    case 1:
      return dsm::MsgFrame{rng() >> 8, static_cast<NodeId>(pick(rng, 128)),
                           randomMessage(rng)};
    case 2:
      return dsm::EventFrame{rng() >> 8, rng() >> 20, randomEvent(rng)};
    case 3:
      return dsm::HeartbeatFrame{rng() >> 8};
    case 4:
      return dsm::FinFrame{rng() >> 8, rng() >> 20};
    case 5: {
      dsm::ProgramFrame p;
      p.chunk = pick(rng, 1000);
      p.last = pick(rng, 2) != 0;
      const std::size_t steps = pick(rng, 40);
      for (std::size_t i = 0; i < steps; ++i) {
        const auto b = static_cast<BlockId>(pick(rng, 64));
        const auto w = static_cast<WordIdx>(pick(rng, 4));
        switch (pick(rng, 3)) {
          case 0: p.steps.push_back(workload::load(b, w)); break;
          case 1: p.steps.push_back(workload::store(b, w, rng())); break;
          default: p.steps.push_back(workload::evict(b)); break;
        }
      }
      return p;
    }
    default:
      return dsm::ChunkDoneFrame{pick(rng, 1000), rng() >> 20};
  }
}

// -- re-encoding equality -----------------------------------------------------

Bytes encodeMessage(const proto::Message& m) {
  Bytes out;
  trace::codec::putMessage(out, m);
  return out;
}

Bytes encodeEvent(const trace::EventRecord& e) {
  Bytes out;
  trace::codec::putEvent(out, e);
  return out;
}

Bytes encodeOneFrame(const dsm::Frame& f) {
  Bytes out;
  dsm::encodeFrame(f, out);
  return out;
}

TEST(WireFuzz, MessageRoundTrip) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int i = 0; i < 3000; ++i) {
    const proto::Message m = randomMessage(rng);
    const Bytes bytes = encodeMessage(m);
    trace::codec::Reader r{bytes.data(), bytes.size(), 0};
    const proto::Message back = trace::codec::getMessage(r);
    ASSERT_TRUE(r.done()) << "decoder left trailing bytes at case " << i;
    ASSERT_EQ(encodeMessage(back), bytes) << "re-encode diverged at " << i;
  }
}

TEST(WireFuzz, EventRecordRoundTrip) {
  std::mt19937_64 rng(0xFACADE);
  for (int i = 0; i < 3000; ++i) {
    const trace::EventRecord e = randomEvent(rng);
    const Bytes bytes = encodeEvent(e);
    trace::codec::Reader r{bytes.data(), bytes.size(), 0};
    const trace::EventRecord back = trace::codec::getEvent(r);
    ASSERT_TRUE(r.done()) << "decoder left trailing bytes at case " << i;
    ASSERT_EQ(back.index(), e.index()) << "variant changed at " << i;
    ASSERT_EQ(encodeEvent(back), bytes) << "re-encode diverged at " << i;
  }
}

TEST(WireFuzz, FrameRoundTrip) {
  std::mt19937_64 rng(0xB00);
  for (int i = 0; i < 1500; ++i) {
    const dsm::Frame f = randomFrame(rng);
    const Bytes bytes = encodeOneFrame(f);
    dsm::FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    const auto back = dec.next();
    ASSERT_TRUE(back.has_value()) << "frame did not decode at case " << i;
    ASSERT_EQ(back->index(), f.index()) << "frame type changed at " << i;
    ASSERT_EQ(encodeOneFrame(*back), bytes) << "re-encode diverged at " << i;
    ASSERT_EQ(dec.buffered(), 0u);
    ASSERT_FALSE(dec.next().has_value());
  }
}

TEST(WireFuzz, FrameDecoderReassemblesArbitrarySplits) {
  std::mt19937_64 rng(0xD1CE);
  for (int round = 0; round < 40; ++round) {
    std::vector<dsm::Frame> frames;
    Bytes stream;
    for (int i = 0; i < 25; ++i) {
      frames.push_back(randomFrame(rng));
      dsm::encodeFrame(frames.back(), stream);
    }
    dsm::FrameDecoder dec;
    std::vector<dsm::Frame> out;
    std::size_t at = 0;
    while (at < stream.size()) {
      const std::size_t left = stream.size() - at;
      const std::size_t n = std::min<std::size_t>(left, 1 + pick(rng, 97));
      dec.feed(stream.data() + at, n);
      at += n;
      while (auto f = dec.next()) out.push_back(std::move(*f));
    }
    ASSERT_EQ(out.size(), frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      ASSERT_EQ(encodeOneFrame(out[i]), encodeOneFrame(frames[i]))
          << "frame " << i << " of round " << round;
    }
    ASSERT_EQ(dec.buffered(), 0u);
  }
}

TEST(WireFuzz, TruncatedPayloadThrows) {
  std::mt19937_64 rng(7);
  const Bytes bytes = encodeOneFrame(randomFrame(rng));
  // Shorten the payload while keeping the length prefix honest: every
  // strict prefix of the payload must be rejected, not misparsed.
  for (std::size_t cut = 5; cut < bytes.size(); ++cut) {
    Bytes mangled(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    const std::uint32_t len = static_cast<std::uint32_t>(cut - 4);
    mangled[0] = static_cast<std::byte>(len & 0xFF);
    mangled[1] = static_cast<std::byte>((len >> 8) & 0xFF);
    mangled[2] = static_cast<std::byte>((len >> 16) & 0xFF);
    mangled[3] = static_cast<std::byte>((len >> 24) & 0xFF);
    dsm::FrameDecoder dec;
    dec.feed(mangled.data(), mangled.size());
    EXPECT_THROW((void)dec.next(), SimError) << "cut at " << cut;
  }
}

TEST(WireFuzz, OversizedFrameRejected) {
  const std::uint32_t huge = (1u << 26) + 1;
  Bytes prefix = {static_cast<std::byte>(huge & 0xFF),
                  static_cast<std::byte>((huge >> 8) & 0xFF),
                  static_cast<std::byte>((huge >> 16) & 0xFF),
                  static_cast<std::byte>((huge >> 24) & 0xFF)};
  dsm::FrameDecoder dec;
  dec.feed(prefix.data(), prefix.size());
  EXPECT_THROW((void)dec.next(), SimError);
}

// -- binary trace archival ----------------------------------------------------

trace::Trace simulatedTrace() {
  SystemConfig cfg;
  cfg.numProcessors = 4;
  cfg.numDirectories = 2;
  cfg.numBlocks = 8;
  cfg.seed = 99;
  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.opsPerProcessor = 300;
  w.seed = 99;
  const auto progs = workload::make(workload::Kind::Hot, w);
  trace::Trace t;
  sim::System sys(cfg, t);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) sys.setProgram(p, progs[p]);
  const sim::RunResult r = sys.run();
  EXPECT_TRUE(r.ok());
  return t;
}

std::string traceText(const trace::Trace& t) {
  std::ostringstream os;
  trace::save(t, os);
  return os.str();
}

TEST(BinaryTrace, StreamRoundTripPreservesEveryRecord) {
  const trace::Trace t = simulatedTrace();
  std::stringstream ss;
  trace::saveBinary(t, ss);
  const trace::Trace back = trace::loadBinary(ss);
  EXPECT_EQ(traceText(back), traceText(t));
}

TEST(BinaryTrace, FileLayerAutodetectsBothFormats) {
  const trace::Trace t = simulatedTrace();
  const std::string dir = ::testing::TempDir();
  const std::string binPath = dir + "/wire_test_bin.trace";
  const std::string txtPath = dir + "/wire_test_txt.trace";
  trace::saveFileBinary(t, binPath);
  trace::saveFile(t, txtPath);
  EXPECT_EQ(traceText(trace::loadFile(binPath)), traceText(t));
  EXPECT_EQ(traceText(trace::loadFile(txtPath)), traceText(t));
}

TEST(BinaryTrace, BinaryIsSmallerThanText) {
  const trace::Trace t = simulatedTrace();
  std::stringstream bin;
  trace::saveBinary(t, bin);
  EXPECT_LT(bin.str().size(), traceText(t).size());
}

}  // namespace
}  // namespace lcdc
