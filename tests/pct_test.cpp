// Property suite for the PCT (randomized-priority) network schedule.
//
// Pct mode delivers the highest-priority pending message next, with
// periodic change points that redraw every pending priority — the
// probabilistic concurrency-testing discipline, transplanted from thread
// schedulers to message delivery.  The properties pinned here:
//
//   * delivery is a legal permutation of what was sent — per-message-type
//     conservation, no drops, no duplicates (Section 2.1's reliability
//     guarantee holds in every mode);
//   * delivery times never go backwards (the priority heap ignores
//     deliverAt order, so the mode clamps to a monotone floor);
//   * a fixed seed gives a byte-identical run (the campaign's determinism
//     guarantee extends to fuzzed Pct cases);
//   * the mode genuinely reorders — deeper than FIFO by construction;
//   * full-system seed-equivalence pins, the same discipline the 240-cell
//     matrix applies to RandomLatency/Fifo, as a separate golden table
//     (kGolden predates this mode and must not grow).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/schedule_probe.hpp"
#include "run_fingerprint.hpp"

namespace lcdc {
namespace {

proto::Message msg(proto::MsgType type, BlockId block) {
  proto::Message m;
  m.type = type;
  m.block = block;
  return m;
}

TEST(Pct, DeliversEverythingExactlyOnceConservingTypes) {
  net::Network net(net::Network::Mode::Pct, Rng(7), 1, 20);
  // A spread of message types, interleaved sends across several ticks.
  const proto::MsgType types[] = {proto::MsgType::GetS, proto::MsgType::GetX,
                                  proto::MsgType::Inv, proto::MsgType::Nack,
                                  proto::MsgType::DataShared};
  for (BlockId b = 0; b < 200; ++b) {
    net.send(0, 1 + b % 3, b / 10, msg(types[b % 5], b));
  }
  EXPECT_EQ(net.inFlight(), 200u);
  std::set<BlockId> seen;
  while (!net.empty()) {
    const net::Envelope env = net.popNext();
    EXPECT_TRUE(seen.insert(env.msg.block).second) << "duplicate delivery";
  }
  EXPECT_EQ(seen.size(), 200u);
  const net::NetStats& s = net.stats();
  EXPECT_EQ(s.sent, 200u);
  EXPECT_EQ(s.delivered, 200u);
  for (std::size_t t = 0; t < s.sentByType.size(); ++t) {
    EXPECT_EQ(s.sentByType[t], s.deliveredByType[t])
        << "type " << t << " not conserved";
  }
}

TEST(Pct, DeliveryTimesAreMonotone) {
  // Priorities ignore send order entirely, so the mode must clamp delivery
  // stamps to a monotone floor — otherwise simulated time would run
  // backwards when a long-starved message finally wins.
  net::Network net(net::Network::Mode::Pct, Rng(11), 1, 30);
  for (BlockId b = 0; b < 300; ++b) {
    net.send(0, 1, b, msg(proto::MsgType::GetS, b));
  }
  net::Tick prev = 0;
  while (!net.empty()) {
    const net::Envelope env = net.popNext();
    EXPECT_GE(env.deliverAt, prev) << "delivery time went backwards";
    prev = env.deliverAt;
  }
}

TEST(Pct, DeterministicForAFixedSeed) {
  const auto order = [](std::uint64_t seed) {
    net::Network net(net::Network::Mode::Pct, Rng(seed), 1, 20);
    for (BlockId b = 0; b < 150; ++b) {
      net.send(0, 1, 0, msg(proto::MsgType::GetS, b));
    }
    std::vector<BlockId> blocks;
    while (!net.empty()) blocks.push_back(net.popNext().msg.block);
    return blocks;
  };
  EXPECT_EQ(order(42), order(42));
  EXPECT_NE(order(42), order(43)) << "priority draws ignore the seed";
}

TEST(Pct, ReordersDeeperThanFifo) {
  const auto maxDepth = [](net::Network::Mode mode) {
    net::Network net(mode, Rng(5), 1, 20);
    net::ScheduleProbe probe;
    net.setProbe(&probe);
    for (BlockId b = 0; b < 200; ++b) {
      net.send(0, 1, 0, msg(proto::MsgType::GetS, b));
    }
    while (!net.empty()) (void)net.popNext();
    return probe.maxReorderDepth;
  };
  EXPECT_EQ(maxDepth(net::Network::Mode::Fifo), 0u);
  EXPECT_GT(maxDepth(net::Network::Mode::Pct), 4u)
      << "randomized priorities should overtake aggressively";
}

TEST(Pct, ChangePointsReshuffleWithinOneRun) {
  // With one fixed seed, the relative order of two messages sent back to
  // back should flip somewhere in a long run — change points redraw all
  // pending priorities, so no static priority assignment survives.
  net::Network net(net::Network::Mode::Pct, Rng(19), 1, 20);
  bool evenFirst = false;
  bool oddFirst = false;
  for (int round = 0; round < 50; ++round) {
    const BlockId base = static_cast<BlockId>(2 * round);
    net.send(0, 1, 0, msg(proto::MsgType::GetS, base));
    net.send(0, 1, 0, msg(proto::MsgType::GetS, base + 1));
    const net::Envelope first = net.popNext();
    (void)net.popNext();
    (first.msg.block % 2 == 0 ? evenFirst : oddFirst) = true;
  }
  EXPECT_TRUE(evenFirst && oddFirst)
      << "priority order never flipped across change points";
}

// -- full-system seed-equivalence pins ---------------------------------------
//
// Captured from this mode's first implementation with
// `sim_throughput --hashes` (the pct rows).  Same discipline as kGolden in
// seed_equiv_test.cpp: 20 seeded sub-runs per cell, full trace text +
// outcome + NetStats + verdicts folded into one hash.  Any change to the
// Pct scheduling (priority draws, change-point cadence, floor clamping)
// flips these; regenerate only for intentional behavior changes.

struct PctGoldenCell {
  workload::Kind kind;
  std::uint64_t hash;
};

const PctGoldenCell kPctGolden[] = {
    {workload::Kind::Uniform, 0xb2839f57aa3752f8ULL},
    {workload::Kind::Hot, 0xec922b872d45bcddULL},
    {workload::Kind::ProdCons, 0xe0306c618ac3ce62ULL},
    {workload::Kind::Migratory, 0xa8e3aad0fb626b86ULL},
    {workload::Kind::FalseShare, 0x3c5f087b67b4b6d7ULL},
    {workload::Kind::ReadMostly, 0x06a2b53f7542c965ULL},
};

constexpr std::uint64_t kSeedsPerCell = 20;

TEST(PctSeedEquiv, MatrixCoversEverySeedEraKind) {
  const auto cells = lcdc::testing::pctFingerprintMatrix();
  ASSERT_EQ(cells.size(), std::size(kPctGolden));
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.mode, net::Network::Mode::Pct);
    bool found = false;
    for (const auto& g : kPctGolden) found = found || g.kind == cell.kind;
    EXPECT_TRUE(found) << "cell missing from pct golden table: "
                       << workload::toString(cell.kind);
  }
}

class PctSeedEquivCell : public ::testing::TestWithParam<PctGoldenCell> {};

TEST_P(PctSeedEquivCell, ByteIdenticalToFirstImplementation) {
  const PctGoldenCell& g = GetParam();
  const lcdc::testing::MatrixCell cell{g.kind, net::Network::Mode::Pct};
  EXPECT_EQ(lcdc::testing::cellFingerprint(cell, kSeedsPerCell), g.hash)
      << "pct schedule diverged for kind=" << workload::toString(g.kind)
      << "; if the behavior change is intentional, regenerate pins with "
         "`sim_throughput --hashes`";
}

std::string pctCellName(const ::testing::TestParamInfo<PctGoldenCell>& i) {
  return workload::toString(i.param.kind);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PctSeedEquivCell,
                         ::testing::ValuesIn(kPctGolden), pctCellName);

}  // namespace
}  // namespace lcdc
