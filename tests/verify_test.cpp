// Unit tests for the checkers: hand-built traces with known-good and
// known-bad shapes.  A verifier is only trustworthy if it (a) accepts
// correct executions and (b) pinpoints each specific defect — these are the
// checkers' own negative controls.
#include <gtest/gtest.h>

#include <algorithm>

#include "trace/trace.hpp"
#include "verify/checkers.hpp"

namespace lcdc::verify {
namespace {

using proto::OpRecord;
using proto::StampRole;
using proto::TxnInfo;

constexpr NodeId kP0 = 0, kP1 = 1, kHome = 2;
constexpr BlockId kBlk = 0;
const VerifyConfig kCfg{2};

/// Builder for small hand-written traces.
struct TraceBuilder {
  trace::Trace t;
  TransactionId nextTxn = 1;
  SerialIdx nextSerial = 0;
  std::uint64_t opIdx[8] = {};

  TxnInfo txn(TxnKind kind, NodeId requester) {
    TxnInfo info;
    info.id = nextTxn++;
    info.serial = ++nextSerial;
    info.kind = kind;
    info.block = kBlk;
    info.requester = requester;
    t.onSerialize(info);
    return info;
  }
  void stamp(NodeId node, const TxnInfo& txn, StampRole role, GlobalTime ts,
             AState oldA, AState newA) {
    t.onStamp(node, txn.id, txn.serial, kBlk, role, ts, oldA, newA);
  }
  void op(NodeId proc, OpKind kind, Word value, const TxnInfo& bound,
          GlobalTime global, LocalTime local, WordIdx word = 0) {
    OpRecord rec;
    rec.proc = proc;
    rec.progIdx = opIdx[proc]++;
    rec.kind = kind;
    rec.block = kBlk;
    rec.word = word;
    rec.value = value;
    rec.boundTxn = bound.id;
    rec.boundSerial = bound.serial;
    rec.ts = Timestamp{global, local, proc};
    t.onOperation(rec);
  }
};

/// A correct little execution: P0 reads, P1 takes exclusive and writes,
/// P0 reads the new value.
TraceBuilder goodTrace() {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetS_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::S);
  b.stamp(kP0, t1, StampRole::Upgrade, 2, AState::I, AState::S);
  b.op(kP0, OpKind::Load, 0, t1, 2, 1);

  const TxnInfo t2 = b.txn(TxnKind::GetX_Shared, kP1);
  b.stamp(kHome, t2, StampRole::Downgrade, 2, AState::S, AState::I);
  b.stamp(kP0, t2, StampRole::Downgrade, 3, AState::S, AState::I);
  b.stamp(kP1, t2, StampRole::Upgrade, 4, AState::I, AState::X);
  b.op(kP1, OpKind::Store, 42, t2, 4, 1);

  const TxnInfo t3 = b.txn(TxnKind::GetS_Exclusive, kP0);
  b.stamp(kHome, t3, StampRole::Downgrade, 3, AState::I, AState::S);
  b.stamp(kP1, t3, StampRole::Downgrade, 5, AState::X, AState::S);
  b.stamp(kP0, t3, StampRole::Upgrade, 6, AState::I, AState::S);
  b.op(kP0, OpKind::Load, 42, t3, 6, 1);
  return b;
}

TEST(Checkers, AcceptACorrectExecution) {
  TraceBuilder b = goodTrace();
  const CheckReport r = checkAll(b.t, kCfg);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.opsChecked, 3u);
  EXPECT_EQ(r.txnsChecked, 3u);
}

TEST(Checkers, EpochsAreBuiltPerNodeAndBlock) {
  TraceBuilder b = goodTrace();
  const auto epochs = buildEpochs(b.t, kCfg);
  // home: initial X + S + I + S; P0: S + I + S; P1: X + S.
  EXPECT_EQ(epochs.size(), 9u);
  int open = 0;
  for (const auto& e : epochs) open += e.end == clk::kOpenEpoch;
  EXPECT_EQ(open, 3);  // one open epoch per node
}

TEST(Checkers, ScCatchesAStaleLoad) {
  TraceBuilder b = goodTrace();
  // P0 reads 0 *after* P1's store of 42 in Lamport time.
  const TxnInfo t4 = b.txn(TxnKind::GetS_Shared, kP0);
  b.stamp(kHome, t4, StampRole::Downgrade, 4, AState::S, AState::S);
  b.stamp(kP0, t4, StampRole::Upgrade, 7, AState::S, AState::S);
  b.op(kP0, OpKind::Load, 0, t4, 7, 1);
  const CheckReport r = checkSequentialConsistency(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "sequential-consistency");
}

TEST(Checkers, ScAcceptsInitialValueBeforeAnyStore) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetS_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::S);
  b.stamp(kP0, t1, StampRole::Upgrade, 2, AState::I, AState::S);
  b.op(kP0, OpKind::Load, 0, t1, 2, 1);
  EXPECT_TRUE(checkSequentialConsistency(b.t, kCfg).ok());
}

TEST(Checkers, TotalOrderRejectsDuplicateTimestamps) {
  TraceBuilder b = goodTrace();
  // Forge a second op at an already-used timestamp of the same processor.
  const TxnInfo* t1 = b.t.findTxn(1);
  ASSERT_NE(t1, nullptr);
  proto::OpRecord dup;
  dup.proc = kP0;
  dup.progIdx = 99;
  dup.kind = OpKind::Load;
  dup.block = kBlk;
  dup.value = 0;
  dup.boundTxn = t1->id;
  dup.boundSerial = t1->serial;
  dup.ts = Timestamp{2, 1, kP0};
  b.t.onOperation(dup);
  const CheckReport r = checkSequentialConsistency(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "total-order");
}

TEST(Checkers, Lemma1CatchesOverlappingExclusiveEpochs) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetX_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::I);
  b.stamp(kP0, t1, StampRole::Upgrade, 2, AState::I, AState::X);
  // A second exclusive epoch at P1 starting while P0's is still open.
  const TxnInfo t2 = b.txn(TxnKind::GetX_Idle, kP1);
  b.stamp(kP1, t2, StampRole::Upgrade, 5, AState::I, AState::X);
  const CheckReport r = checkEpochs(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "lemma1");
}

TEST(Checkers, Lemma1AllowsConcurrentSharedEpochs) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetS_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::S);
  b.stamp(kP0, t1, StampRole::Upgrade, 2, AState::I, AState::S);
  const TxnInfo t2 = b.txn(TxnKind::GetS_Shared, kP1);
  b.stamp(kHome, t2, StampRole::Downgrade, 2, AState::S, AState::S);
  b.stamp(kP1, t2, StampRole::Upgrade, 3, AState::I, AState::S);
  EXPECT_TRUE(checkEpochs(b.t, kCfg).ok());
}

TEST(Checkers, Lemma2CatchesAStoreInASharedEpoch) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetS_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::S);
  b.stamp(kP0, t1, StampRole::Upgrade, 2, AState::I, AState::S);
  b.op(kP0, OpKind::Store, 7, t1, 2, 1);  // store without write permission
  const CheckReport r = checkEpochs(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "lemma2");
}

TEST(Checkers, Lemma2CatchesAnOpOutsideItsEpoch) {
  TraceBuilder b = goodTrace();
  // A load bound to txn 1 (P0's shared epoch [2,3)) stamped way past its
  // end.
  const TxnInfo* t1 = b.t.findTxn(1);
  b.op(kP0, OpKind::Load, 0, *t1, 9, 1);
  const CheckReport r = checkEpochs(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "lemma2");
}

TEST(Checkers, Claim2CatchesOutOfSerialAStateChanges) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetS_Idle, kP0);
  const TxnInfo t2 = b.txn(TxnKind::GetX_Shared, kP1);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::S);
  b.stamp(kP0, t2, StampRole::Downgrade, 1, AState::S, AState::I);
  b.stamp(kP0, t1, StampRole::Upgrade, 2, AState::I, AState::S);  // late!
  const CheckReport r = checkClaim2(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "claim2");
}

TEST(Checkers, Claim3aCatchesLateDowngrades) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetX_Shared, kP1);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::S, AState::I);
  b.stamp(kP1, t1, StampRole::Upgrade, 2, AState::I, AState::X);
  b.stamp(kP0, t1, StampRole::Downgrade, 9, AState::S, AState::I);  // > 2
  const CheckReport r = checkClaim3(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "claim3a");
}

TEST(Checkers, Claim3bCatchesNonMonotoneExclusiveUpgrades) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetX_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::I);
  b.stamp(kP0, t1, StampRole::Upgrade, 5, AState::I, AState::X);
  const TxnInfo t2 = b.txn(TxnKind::Wb_Exclusive, kP0);
  b.stamp(kP0, t2, StampRole::Downgrade, 6, AState::X, AState::I);
  b.stamp(kHome, t2, StampRole::Upgrade, 3, AState::I, AState::X);  // < 5
  const CheckReport r = checkClaim3(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  // Both 3(a) (downgrade 6 > upgrade 3) and 3(b) fire; 3(b) must be there.
  const bool saw3b = std::any_of(
      r.violations.begin(), r.violations.end(),
      [](const Violation& v) { return v.check == "claim3b"; });
  EXPECT_TRUE(saw3b);
}

TEST(Checkers, Claim3StructureRequiresExactlyOneUpgrader) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetS_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::S);
  // No upgrade stamp at all.
  const CheckReport r = checkClaim3(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "claim3-structure");

  VerifyConfig lenient = kCfg;
  lenient.expectComplete = false;  // truncated traces are fine then
  EXPECT_TRUE(checkClaim3(b.t, lenient).ok());
}

TEST(Checkers, ValueChainAcceptsCorrectTransfers) {
  TraceBuilder b = goodTrace();
  // P1's exclusive epoch starts at 4; the only store before it wrote
  // nothing (initial 0), so P1 receiving 0s is consistent...
  b.t.onValueReceived(kP1, 2, kBlk, BlockValue{0, 0});
  // ...and P0's re-read epoch starts at 6, after P1's store of 42 to
  // word 0.
  b.t.onValueReceived(kP0, 3, kBlk, BlockValue{42, 0});
  EXPECT_TRUE(checkValueChain(b.t, kCfg).ok());
}

TEST(Checkers, ValueChainCatchesAStaleTransfer) {
  TraceBuilder b = goodTrace();
  // P0's epoch for txn 3 starts at 6 — after P1 stored 42 — yet the block
  // arrives with the stale initial value.
  b.t.onValueReceived(kP0, 3, kBlk, BlockValue{0, 0});
  const CheckReport r = checkValueChain(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "lemma3-values");
}

TEST(Checkers, ProgramOrderCatchesLamportInversion) {
  TraceBuilder b = goodTrace();
  // P1's second op goes backwards in Lamport time.
  const TxnInfo* t2 = b.t.findTxn(2);
  b.op(kP1, OpKind::Store, 43, *t2, 3, 1);  // global 3 < previous op's 4
  const CheckReport r = checkProgramOrder(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().check, "program-order");
}

TEST(Checkers, ViolationListIsBounded) {
  TraceBuilder b;
  const TxnInfo t1 = b.txn(TxnKind::GetX_Idle, kP0);
  b.stamp(kHome, t1, StampRole::Downgrade, 1, AState::X, AState::I);
  b.stamp(kP0, t1, StampRole::Upgrade, 2, AState::I, AState::X);
  for (int i = 0; i < 100; ++i) {
    b.op(kP0, OpKind::Load, 12345, t1, 2, static_cast<LocalTime>(i + 1));
  }
  VerifyConfig small = kCfg;
  small.maxViolations = 5;
  const CheckReport r = checkSequentialConsistency(b.t, small);
  ASSERT_FALSE(r.ok());
  EXPECT_LE(r.violations.size(), 6u);  // 5 + the elision marker
}

TEST(Checkers, SummaryMentionsFirstViolation) {
  TraceBuilder b = goodTrace();
  const TxnInfo* t1 = b.t.findTxn(1);
  b.op(kP0, OpKind::Load, 999, *t1, 9, 1);
  const CheckReport r = checkAll(b.t, kCfg);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.summary().find("VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace lcdc::verify
