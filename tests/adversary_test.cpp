// Adversarial-scheduler fuzzing: drive the system in Manual network mode
// and pick the next message to deliver *uniformly at random from the whole
// in-flight bag*.  This explores interleavings a timed network can be
// arbitrarily unlikely to produce (e.g. a message overtaken by thousands of
// later ones), which is where the deepest protocol races hide.  Every
// schedule must drain and verify.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace lcdc {
namespace {

struct AdversaryParam {
  std::uint64_t seed;
  NodeId procs;
  BlockId blocks;
  std::uint32_t capacity;
  bool putShared;
};

class AdversarySweep : public testing::TestWithParam<AdversaryParam> {};

TEST_P(AdversarySweep, RandomDeliveryOrderStaysCorrect) {
  const AdversaryParam& prm = GetParam();
  SystemConfig cfg;
  cfg.numProcessors = prm.procs;
  cfg.numDirectories = 2;
  cfg.numBlocks = prm.blocks;
  cfg.cacheCapacity = prm.capacity;
  cfg.proto.putSharedEnabled = prm.putShared;
  cfg.seed = prm.seed;

  auto w = test::workloadFor(cfg, 250, prm.seed * 13 + 5);
  w.storePercent = 45;
  w.evictPercent = 12;
  const auto programs = workload::hotBlock(w, 85, std::min<BlockId>(3, prm.blocks));

  trace::Trace trace;
  sim::System sys(cfg, trace, net::Network::Mode::Manual);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    sys.setProgram(p, programs[p]);
  }
  for (NodeId p = 0; p < cfg.numProcessors; ++p) sys.kick(p);

  Rng scheduler(prm.seed ^ 0xADBEEF);
  std::uint64_t steps = 0;
  const std::uint64_t budget = 3'000'000;
  while (steps++ < budget) {
    if (!sys.network().empty()) {
      const std::size_t pick =
          scheduler.uniform(0, sys.network().pending().size() - 1);
      sys.deliverManual(pick);
    } else if (!sys.allProgramsDone()) {
      // Only retry timers remain: advance simulated time so NACKed
      // processors re-issue.
      sys.advanceTime(cfg.retryDelay * 2 + 1);
      ASSERT_FALSE(sys.network().empty() && !sys.allProgramsDone() &&
                   steps > budget / 2)
          << "no progress under the adversarial schedule";
    } else {
      break;
    }
  }
  ASSERT_TRUE(sys.allProgramsDone()) << "budget exhausted mid-run";
  ASSERT_TRUE(sys.quiescent());

  const auto report =
      verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
  EXPECT_TRUE(report.ok()) << report.summary();
}

constexpr AdversaryParam kAdversary[] = {
    {1, 4, 4, 0, true},  {2, 4, 4, 2, true},  {3, 6, 6, 2, true},
    {4, 6, 2, 2, true},  {5, 8, 8, 3, true},  {6, 4, 4, 2, false},
    {7, 6, 6, 0, false}, {8, 3, 1, 0, true},  {9, 5, 3, 2, true},
    {10, 8, 4, 3, true}, {11, 4, 2, 2, true}, {12, 6, 3, 2, true},
};

INSTANTIATE_TEST_SUITE_P(
    Fuzz, AdversarySweep, testing::ValuesIn(kAdversary),
    [](const testing::TestParamInfo<AdversaryParam>& info) {
      return "s" + std::to_string(info.param.seed) + "p" +
             std::to_string(info.param.procs) + "b" +
             std::to_string(info.param.blocks) + "c" +
             std::to_string(info.param.capacity) +
             (info.param.putShared ? "_ps" : "_nops");
    });

}  // namespace
}  // namespace lcdc
