// Unit tests for the cache controller: binding rules, request issue,
// Section 2.4 buffering, Section 2.5 Put-Shared / stale invalidations /
// deadlock detection, and value handling per Facts 1-2.
#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"
#include "proto/cache.hpp"
#include "trace/trace.hpp"

namespace lcdc::proto {
namespace {

constexpr NodeId kSelf = 0;
constexpr NodeId kHome = 10;
constexpr BlockId kBlk = 0;

struct RecordingClient : CacheClient {
  std::vector<std::pair<BlockId, ReqType>> completions;
  std::vector<std::pair<BlockId, ReqType>> nacks;
  std::vector<BlockId> unblocked;
  void onComplete(BlockId b, ReqType r) override {
    completions.emplace_back(b, r);
  }
  void onNacked(BlockId b, ReqType r, NackKind) override {
    nacks.emplace_back(b, r);
  }
  void onLineUnblocked(BlockId b) override { unblocked.push_back(b); }
};

class CacheTest : public testing::Test {
 protected:
  CacheTest() : cache(kSelf, ProtoConfig{}, trace, client) {}

  Message reply(MsgType type, TransactionId txn = 1, SerialIdx serial = 1) {
    Message m;
    m.type = type;
    m.block = kBlk;
    m.src = kHome;
    m.requester = kSelf;
    m.txn = txn;
    m.serial = serial;
    m.stamps = {TsStamp{kHome, serial}};
    if (type == MsgType::DataShared || type == MsgType::DataExclusive ||
        type == MsgType::OwnerData) {
      m.data = BlockValue{10, 20, 30, 40};
    }
    return m;
  }

  /// Bring the line to read-only via a GetS round trip.
  void acquireShared(TransactionId txn = 1, SerialIdx serial = 1) {
    cache.issueRequest(kBlk, ReqType::GetShared, kHome, out);
    out.clear();
    cache.handle(reply(MsgType::DataShared, txn, serial), out);
    out.clear();
  }

  /// Bring the line to read-write via a GetX round trip (no sharers).
  void acquireExclusive(TransactionId txn = 1, SerialIdx serial = 1) {
    cache.issueRequest(kBlk, ReqType::GetExclusive, kHome, out);
    out.clear();
    cache.handle(reply(MsgType::DataExclusive, txn, serial), out);
    out.clear();
  }

  trace::Trace trace;
  RecordingClient client;
  CacheController cache;
  Outbox out;
};

TEST_F(CacheTest, NothingBindsWhenInvalid) {
  EXPECT_FALSE(cache.canBind(kBlk, OpKind::Load));
  EXPECT_FALSE(cache.canBind(kBlk, OpKind::Store));
  EXPECT_EQ(cache.state(kBlk), CacheState::Invalid);
  EXPECT_FALSE(cache.requestBlocked(kBlk));
}

TEST_F(CacheTest, GetSharedRoundTripEnablesLoadsOnly) {
  cache.issueRequest(kBlk, ReqType::GetShared, kHome, out);
  ASSERT_EQ(out.msgs.size(), 1u);
  EXPECT_EQ(out.msgs[0].msg.type, MsgType::GetS);
  EXPECT_EQ(out.msgs[0].dst, kHome);
  EXPECT_TRUE(cache.requestBlocked(kBlk));
  EXPECT_FALSE(cache.canBind(kBlk, OpKind::Load));  // not yet
  out.clear();

  cache.handle(reply(MsgType::DataShared), out);
  EXPECT_EQ(client.completions,
            (std::vector<std::pair<BlockId, ReqType>>{
                {kBlk, ReqType::GetShared}}));
  EXPECT_TRUE(cache.canBind(kBlk, OpKind::Load));
  EXPECT_FALSE(cache.canBind(kBlk, OpKind::Store));

  const BindResult r = cache.bind(kBlk, OpKind::Load, 1, 0);
  EXPECT_EQ(r.value, 20u);  // the delivered data
  EXPECT_EQ(r.boundTxn, 1u);
}

TEST_F(CacheTest, StoresUpdateTheLocalCopy) {
  acquireExclusive();
  EXPECT_TRUE(cache.canBind(kBlk, OpKind::Store));
  (void)cache.bind(kBlk, OpKind::Store, 2, 777);
  const BindResult r = cache.bind(kBlk, OpKind::Load, 2, 0);
  EXPECT_EQ(r.value, 777u);  // Fact 1(a): load sees own prior store
}

TEST_F(CacheTest, ForwardedGetSCarriesCurrentValueAndDowngrades) {
  acquireExclusive();
  (void)cache.bind(kBlk, OpKind::Store, 0, 555);

  Message fwd;
  fwd.type = MsgType::FwdGetS;
  fwd.block = kBlk;
  fwd.src = kHome;
  fwd.requester = 2;
  fwd.txn = 5;
  fwd.serial = 2;
  cache.handle(fwd, out);

  ASSERT_EQ(out.msgs.size(), 2u);
  const Message* data = nullptr;
  const Message* update = nullptr;
  for (const auto& e : out.msgs) {
    if (e.msg.type == MsgType::OwnerData) {
      EXPECT_EQ(e.dst, 2u);
      data = &e.msg;
    } else if (e.msg.type == MsgType::UpdateS) {
      EXPECT_EQ(e.dst, kHome);
      update = &e.msg;
    }
  }
  ASSERT_NE(data, nullptr);
  ASSERT_NE(update, nullptr);
  // Fact 2: the value sent is the latest bound store.
  EXPECT_EQ(data->data[0], 555u);
  EXPECT_EQ(update->data[0], 555u);
  EXPECT_EQ(cache.state(kBlk), CacheState::ReadOnly);
  EXPECT_TRUE(cache.canBind(kBlk, OpKind::Load));
  EXPECT_FALSE(cache.canBind(kBlk, OpKind::Store));
  // Loads after the downgrade bind to the *forwarded* transaction's epoch.
  EXPECT_EQ(cache.bind(kBlk, OpKind::Load, 0, 0).boundTxn, 5u);
}

TEST_F(CacheTest, ForwardedGetXInvalidatesAndTransfersOwnership) {
  acquireExclusive();
  Message fwd;
  fwd.type = MsgType::FwdGetX;
  fwd.block = kBlk;
  fwd.src = kHome;
  fwd.requester = 2;
  fwd.txn = 5;
  fwd.serial = 2;
  cache.handle(fwd, out);
  ASSERT_EQ(out.msgs.size(), 2u);
  EXPECT_EQ(cache.state(kBlk), CacheState::Invalid);
  bool sawUpdateX = false;
  for (const auto& e : out.msgs) sawUpdateX |= e.msg.type == MsgType::UpdateX;
  EXPECT_TRUE(sawUpdateX);
}

TEST_F(CacheTest, InvalidationWhileIdleAcksAndInvalidates) {
  acquireShared();
  Message inv;
  inv.type = MsgType::Inv;
  inv.block = kBlk;
  inv.src = kHome;
  inv.requester = 3;
  inv.txn = 9;
  inv.serial = 2;
  cache.handle(inv, out);
  ASSERT_EQ(out.msgs.size(), 1u);
  EXPECT_EQ(out.msgs[0].msg.type, MsgType::InvAck);
  EXPECT_EQ(out.msgs[0].dst, 3u);  // ack goes to the *requester*
  ASSERT_EQ(out.msgs[0].msg.stamps.size(), 1u);
  EXPECT_EQ(out.msgs[0].msg.stamps[0].node, kSelf);
  EXPECT_EQ(cache.state(kBlk), CacheState::Invalid);
}

TEST_F(CacheTest, InvalidationBufferedBehindOutstandingUpgrade) {
  acquireShared();
  cache.issueRequest(kBlk, ReqType::Upgrade, kHome, out);
  out.clear();
  Message inv;
  inv.type = MsgType::Inv;
  inv.block = kBlk;
  inv.src = kHome;
  inv.requester = 3;
  inv.txn = 9;
  inv.serial = 2;
  cache.handle(inv, out);
  EXPECT_TRUE(out.msgs.empty());  // buffered, not acknowledged
  EXPECT_EQ(cache.stats().invalidationsBuffered, 1u);

  // The home NACKs the Upgrade (we lost the race) — the buffered
  // invalidation now applies, and the retry will be a Get-Exclusive.
  Message nack;
  nack.type = MsgType::Nack;
  nack.block = kBlk;
  nack.src = kHome;
  nack.requester = kSelf;
  nack.nackKind = NackKind::Upg_Exclusive;
  nack.nackedReq = ReqType::Upgrade;
  cache.handle(nack, out);
  ASSERT_EQ(out.msgs.size(), 1u);
  EXPECT_EQ(out.msgs[0].msg.type, MsgType::InvAck);
  EXPECT_EQ(cache.state(kBlk), CacheState::Invalid);
  EXPECT_EQ(client.nacks.size(), 1u);
}

TEST_F(CacheTest, PutSharedKeepsASharedAState) {
  acquireShared();
  cache.putShared(kBlk);
  EXPECT_EQ(cache.state(kBlk), CacheState::Invalid);
  EXPECT_EQ(cache.findLine(kBlk)->astate, AState::S);  // conceptual state
  EXPECT_FALSE(cache.requestBlocked(kBlk));
  EXPECT_EQ(cache.stats().putShareds, 1u);
}

TEST_F(CacheTest, StaleInvalidationAfterPutSharedIsAcked) {
  acquireShared();
  cache.putShared(kBlk);
  Message inv;
  inv.type = MsgType::Inv;
  inv.block = kBlk;
  inv.src = kHome;
  inv.requester = 3;
  inv.txn = 9;
  inv.serial = 2;
  cache.handle(inv, out);  // Section 2.5 addition (3)
  ASSERT_EQ(out.msgs.size(), 1u);
  EXPECT_EQ(out.msgs[0].msg.type, MsgType::InvAck);
  EXPECT_EQ(cache.stats().staleInvAcks, 1u);
  EXPECT_EQ(cache.findLine(kBlk)->astate, AState::I);
}

TEST_F(CacheTest, ReRequestAfterPutSharedCarriesPreCloseStamp) {
  acquireShared();
  cache.putShared(kBlk);
  cache.issueRequest(kBlk, ReqType::GetShared, kHome, out);
  ASSERT_EQ(out.msgs.size(), 1u);
  const Message& m = out.msgs[0].msg;
  ASSERT_EQ(m.stamps.size(), 1u);  // the pre-close stamp
  EXPECT_EQ(m.stamps[0].node, kSelf);
  EXPECT_GT(m.stamps[0].ts, 0u);
}

TEST_F(CacheTest, FreshRequestCarriesNoStamp) {
  cache.issueRequest(kBlk, ReqType::GetShared, kHome, out);
  EXPECT_TRUE(out.msgs[0].msg.stamps.empty());
}

TEST_F(CacheTest, GetXWaitsForEveryInvAck) {
  cache.issueRequest(kBlk, ReqType::GetExclusive, kHome, out);
  out.clear();
  Message data = reply(MsgType::DataExclusive);
  data.invTargets = {2, 3};
  cache.handle(data, out);
  EXPECT_TRUE(client.completions.empty());  // still waiting

  Message ack;
  ack.type = MsgType::InvAck;
  ack.block = kBlk;
  ack.src = 2;
  ack.requester = kSelf;
  ack.txn = 1;
  ack.stamps = {TsStamp{2, 4}};
  cache.handle(ack, out);
  EXPECT_TRUE(client.completions.empty());  // one of two

  ack.src = 3;
  ack.stamps = {TsStamp{3, 6}};
  cache.handle(ack, out);
  ASSERT_EQ(client.completions.size(), 1u);
  EXPECT_EQ(cache.state(kBlk), CacheState::ReadWrite);
  // Upgrade stamp = 1 + max(all received stamps).
  EXPECT_EQ(cache.findLine(kBlk)->epochTs, 7u);
}

TEST_F(CacheTest, EarlyInvAckBeforeReplyIsCounted) {
  cache.issueRequest(kBlk, ReqType::GetExclusive, kHome, out);
  out.clear();
  Message ack;  // arrives before the home's reply
  ack.type = MsgType::InvAck;
  ack.block = kBlk;
  ack.src = 2;
  ack.requester = kSelf;
  ack.txn = 1;
  ack.stamps = {TsStamp{2, 4}};
  cache.handle(ack, out);
  EXPECT_TRUE(client.completions.empty());

  Message data = reply(MsgType::DataExclusive);
  data.invTargets = {2};
  cache.handle(data, out);
  ASSERT_EQ(client.completions.size(), 1u);
  EXPECT_EQ(cache.state(kBlk), CacheState::ReadWrite);
}

TEST_F(CacheTest, WritebackStopsBindingImmediately) {
  acquireExclusive();
  cache.writeback(kBlk, kHome, out);
  ASSERT_EQ(out.msgs.size(), 1u);
  EXPECT_EQ(out.msgs[0].msg.type, MsgType::Writeback);
  ASSERT_EQ(out.msgs[0].msg.stamps.size(), 1u);  // pre-assigned stamp
  EXPECT_FALSE(cache.canBind(kBlk, OpKind::Load));
  EXPECT_TRUE(cache.requestBlocked(kBlk));
  out.clear();

  Message ack;
  ack.type = MsgType::WbAck;
  ack.block = kBlk;
  ack.src = kHome;
  ack.requester = kSelf;
  ack.txn = 2;
  ack.serial = 2;
  cache.handle(ack, out);
  EXPECT_FALSE(cache.requestBlocked(kBlk));
  EXPECT_EQ(cache.findLine(kBlk)->astate, AState::I);
}

TEST_F(CacheTest, MisuseIsRejected) {
  EXPECT_THROW(cache.bind(kBlk, OpKind::Load, 0, 0), ProtocolError);
  EXPECT_THROW(cache.putShared(kBlk), ProtocolError);
  EXPECT_THROW(cache.writeback(kBlk, kHome, out), ProtocolError);
  EXPECT_THROW(cache.issueRequest(kBlk, ReqType::Upgrade, kHome, out),
               ProtocolError);
  acquireShared();
  EXPECT_THROW(cache.issueRequest(kBlk, ReqType::GetShared, kHome, out),
               ProtocolError);  // line not invalid
  cache.issueRequest(kBlk, ReqType::Upgrade, kHome, out);
  EXPECT_THROW(cache.issueRequest(kBlk, ReqType::Upgrade, kHome, out),
               ProtocolError);  // one outstanding request per block
}

TEST_F(CacheTest, InvalidationAddressedToOwnerIsImpossible) {
  acquireExclusive();
  Message inv;
  inv.type = MsgType::Inv;
  inv.block = kBlk;
  inv.src = kHome;
  inv.requester = 3;
  inv.txn = 9;
  EXPECT_THROW(cache.handle(inv, out), ProtocolError);
}

}  // namespace
}  // namespace lcdc::proto
