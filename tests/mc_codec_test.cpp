// Differential tests for the binary canonical state codec (DESIGN.md §9).
//
// Two properties carry the binary engine's correctness argument:
//
//   1. Round-trip: `encodeDecoded(decode(e)) == e` for every encoding `e`
//      of a reachable state — the bit layout loses nothing it stores.
//   2. Key equivalence: two reachable worlds get equal binary encodings
//      iff they get equal *legacy string* keys (the old engine's visited
//      key, preserved verbatim in `legacy_key.hpp`).  This is the 1:1
//      class correspondence that makes the binary engine's state counts
//      provably byte-identical to the string engine's.
//
// Both are checked over >=10k states sampled from random reachable
// prefixes (random walks from the initial world) at 2x1 and 3x2, with and
// without symmetry reduction, and under --model-data.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "mc/legacy_key.hpp"
#include "mc/state_codec.hpp"
#include "mc/world.hpp"

namespace lcdc {
namespace {

/// Apply one uniformly random enabled action (the same action vocabulary
/// the explorer uses) to `w`.  Returns false when no action is enabled.
class RandomWalker {
 public:
  RandomWalker(const mc::McConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  bool step(mc::World& w) {
    struct Cand {
      enum Kind { Deliver, Issue, PutShared, Writeback, Store } kind;
      std::size_t flight = 0;
      NodeId p = 0;
      BlockId b = 0;
      ReqType req{};
    };
    std::vector<Cand> cands;
    for (std::size_t i = 0; i < w.flight.size(); ++i) {
      cands.push_back(Cand{Cand::Deliver, i, 0, 0, {}});
    }
    for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
      for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
        const proto::CacheController& cache = w.caches[p];
        if (cache.requestBlocked(b)) continue;
        const CacheState cs = cache.state(b);
        if (cs == CacheState::Invalid) {
          cands.push_back(Cand{Cand::Issue, 0, p, b, ReqType::GetShared});
          cands.push_back(Cand{Cand::Issue, 0, p, b, ReqType::GetExclusive});
        } else if (cs == CacheState::ReadOnly) {
          cands.push_back(Cand{Cand::Issue, 0, p, b, ReqType::Upgrade});
          if (cfg_.allowEvictions && cfg_.proto.putSharedEnabled) {
            cands.push_back(Cand{Cand::PutShared, 0, p, b, {}});
          }
        } else if (cfg_.allowEvictions) {
          cands.push_back(Cand{Cand::Writeback, 0, p, b, {}});
        }
        if (cfg_.modelData) {
          const proto::Line* line = cache.findLine(b);
          if (line != nullptr && !line->data.empty() &&
              cache.canBind(b, OpKind::Store)) {
            cands.push_back(Cand{Cand::Store, 0, p, b, {}});
          }
        }
      }
    }
    if (cands.empty()) return false;
    const Cand c = cands[std::uniform_int_distribution<std::size_t>(
        0, cands.size() - 1)(rng_)];
    proto::Outbox ob;
    switch (c.kind) {
      case Cand::Deliver: {
        const mc::Flight f = w.flight[c.flight];
        w.flight.erase(w.flight.begin() +
                       static_cast<std::ptrdiff_t>(c.flight));
        if (f.dst >= cfg_.numProcessors) {
          w.dirs[0].handle(f.msg, ob);
        } else {
          w.caches[f.dst].handle(f.msg, ob);
        }
        absorb(w, f.dst, ob);
        break;
      }
      case Cand::Issue:
        w.caches[c.p].issueRequest(c.b, c.req, cfg_.numProcessors, ob);
        absorb(w, c.p, ob);
        break;
      case Cand::PutShared:
        w.caches[c.p].putShared(c.b);
        break;
      case Cand::Writeback:
        w.caches[c.p].writeback(c.b, cfg_.numProcessors, ob);
        absorb(w, c.p, ob);
        break;
      case Cand::Store: {
        const proto::Line* line = w.caches[c.p].findLine(c.b);
        const Word v = (line->data[0] + 1) & 3;
        (void)w.caches[c.p].bind(c.b, OpKind::Store, 0, v);
        break;
      }
    }
    return true;
  }

 private:
  static void absorb(mc::World& w, NodeId src, proto::Outbox& ob) {
    for (auto& entry : ob.msgs) {
      entry.msg.src = src;
      w.flight.push_back(mc::Flight{entry.dst, std::move(entry.msg)});
    }
  }

  mc::McConfig cfg_;
  std::mt19937_64 rng_;
};

struct SampleStats {
  std::size_t samples = 0;
  std::size_t distinctClasses = 0;
};

/// Walk `walks` random prefixes of length `steps`, checking round-trip and
/// legacy/binary key equivalence at every visited state.  (void so the
/// fatal ASSERT_* macros are usable; results land in `out`.)
void checkSampledStates(const mc::McConfig& cfg, std::size_t walks,
                        std::size_t steps, SampleStats* out) {
  SampleStats stats;
  mc::StateCodec codec(cfg);
  mc::LegacyCanonicalizer legacy(cfg);
  // The 1:1 maps proving equivalence in both directions.
  std::map<std::string, std::vector<std::byte>> legacyToBin;
  std::map<std::vector<std::byte>, std::string> binToLegacy;
  std::vector<std::byte> enc;
  std::vector<std::byte> reenc;
  for (std::size_t wIdx = 0; wIdx < walks; ++wIdx) {
    proto::TxnCounter txns;
    mc::World w = mc::makeInitialWorld(cfg, txns);
    RandomWalker walker(cfg, 0x5eed0000 + wIdx);
    for (std::size_t s = 0; s < steps; ++s) {
      if (s != 0 && !walker.step(w)) break;
      stats.samples += 1;

      codec.encode(w, enc);
      const mc::DecodedState dec =
          codec.decode(enc.data(), enc.size());
      codec.encodeDecoded(dec, reenc);
      ASSERT_EQ(enc, reenc)
          << "round-trip mismatch at walk " << wIdx << " step " << s;

      const std::string key = legacy.key(w);
      const auto itL = legacyToBin.find(key);
      if (itL != legacyToBin.end()) {
        ASSERT_EQ(itL->second, enc)
            << "equal legacy keys, different binary encodings (walk "
            << wIdx << " step " << s << ")";
      }
      const auto itB = binToLegacy.find(enc);
      if (itB != binToLegacy.end()) {
        ASSERT_EQ(itB->second, key)
            << "equal binary encodings, different legacy keys (walk "
            << wIdx << " step " << s << ")";
      }
      if (itL == legacyToBin.end()) {
        legacyToBin.emplace(key, enc);
        binToLegacy.emplace(enc, key);
      }
    }
  }
  stats.distinctClasses = legacyToBin.size();
  *out = stats;
}

TEST(StateCodec, RoundTripAndKeyEquivalenceTwoProcsOneBlock) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  SampleStats s;
  checkSampledStates(cfg, 500, 24, &s);
  EXPECT_GE(s.samples, 10'000u);
  EXPECT_GT(s.distinctClasses, 100u);
}

TEST(StateCodec, RoundTripAndKeyEquivalenceThreeProcsTwoBlocks) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 2;
  SampleStats s;
  checkSampledStates(cfg, 400, 30, &s);
  EXPECT_GE(s.samples, 10'000u);
  EXPECT_GT(s.distinctClasses, 500u);
}

TEST(StateCodec, RoundTripAndKeyEquivalenceWithSymmetry) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 2;
  cfg.symmetry = true;
  SampleStats s;
  checkSampledStates(cfg, 200, 25, &s);
  EXPECT_GE(s.samples, 4'000u);
  EXPECT_GT(s.distinctClasses, 300u);
}

TEST(StateCodec, RoundTripAndKeyEquivalenceWithModelData) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.modelData = true;
  SampleStats s;
  checkSampledStates(cfg, 250, 24, &s);
  EXPECT_GE(s.samples, 5'000u);
  EXPECT_GT(s.distinctClasses, 100u);
}

TEST(StateCodec, SymmetricWorldsGetOneEncoding) {
  // Issue the same request from node 0 vs node 1: distinct states without
  // symmetry, one canonical class with it.
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.symmetry = true;
  mc::StateCodec codec(cfg);
  proto::TxnCounter txns;
  mc::World a = mc::makeInitialWorld(cfg, txns);
  mc::World b = mc::makeInitialWorld(cfg, txns);
  proto::Outbox ob;
  a.caches[0].issueRequest(0, ReqType::GetShared, cfg.numProcessors, ob);
  for (auto& e : ob.msgs) {
    e.msg.src = 0;
    a.flight.push_back(mc::Flight{e.dst, std::move(e.msg)});
  }
  ob.clear();
  b.caches[1].issueRequest(0, ReqType::GetShared, cfg.numProcessors, ob);
  for (auto& e : ob.msgs) {
    e.msg.src = 1;
    b.flight.push_back(mc::Flight{e.dst, std::move(e.msg)});
  }
  std::vector<std::byte> encA;
  std::vector<std::byte> encB;
  codec.encode(a, encA);
  codec.encode(b, encB);
  EXPECT_EQ(encA, encB);

  mc::McConfig noSym = cfg;
  noSym.symmetry = false;
  mc::StateCodec plain(noSym);
  plain.encode(a, encA);
  plain.encode(b, encB);
  EXPECT_NE(encA, encB);
}

TEST(StateCodec, EncodingIsInsensitiveToRawTxnIds) {
  // Burn transaction ids before one of two otherwise-identical runs: the
  // canonical encoding renumbers ids in encounter order, so the raw
  // values must not leak into the key.
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  mc::StateCodec codec(cfg);
  const auto buildWorld = [&cfg](proto::TxnCounter& txns) {
    mc::World w = mc::makeInitialWorld(cfg, txns);
    proto::Outbox ob;
    w.caches[0].issueRequest(0, ReqType::GetExclusive, cfg.numProcessors,
                             ob);
    for (auto& e : ob.msgs) {
      e.msg.src = 0;
      w.flight.push_back(mc::Flight{e.dst, std::move(e.msg)});
    }
    // Deliver the GetX at the home so a transaction id is allocated.
    const mc::Flight f = w.flight.front();
    w.flight.erase(w.flight.begin());
    ob.clear();
    w.dirs[0].handle(f.msg, ob);
    for (auto& e : ob.msgs) {
      e.msg.src = f.dst;
      w.flight.push_back(mc::Flight{e.dst, std::move(e.msg)});
    }
    return w;
  };
  proto::TxnCounter fresh;
  proto::TxnCounter burned;
  for (int i = 0; i < 1000; ++i) (void)burned.allocate();
  const mc::World a = buildWorld(fresh);
  const mc::World b = buildWorld(burned);
  std::vector<std::byte> encA;
  std::vector<std::byte> encB;
  codec.encode(a, encA);
  codec.encode(b, encB);
  EXPECT_EQ(encA, encB);
}

}  // namespace
}  // namespace lcdc
