// Unit tests for the workload generators: determinism, store-value
// uniqueness (required by the SC replay), bounds, and mix calibration.
#include <gtest/gtest.h>

#include <set>

#include "workload/generators.hpp"

namespace lcdc::workload {
namespace {

WorkloadConfig baseCfg() {
  WorkloadConfig w;
  w.seed = 42;
  w.numProcessors = 4;
  w.numBlocks = 16;
  w.wordsPerBlock = 4;
  w.opsPerProcessor = 1000;
  return w;
}

using Maker = std::vector<Program> (*)(const WorkloadConfig&);

std::vector<Program> hotDefault(const WorkloadConfig& c) {
  return hotBlock(c);
}

class GeneratorSuite : public testing::TestWithParam<Maker> {};

TEST_P(GeneratorSuite, DeterministicFromConfig) {
  const auto a = GetParam()(baseCfg());
  const auto b = GetParam()(baseCfg());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].steps.size(), b[p].steps.size());
    for (std::size_t i = 0; i < a[p].steps.size(); ++i) {
      EXPECT_EQ(a[p].steps[i].kind, b[p].steps[i].kind);
      EXPECT_EQ(a[p].steps[i].block, b[p].steps[i].block);
      EXPECT_EQ(a[p].steps[i].word, b[p].steps[i].word);
      EXPECT_EQ(a[p].steps[i].storeValue, b[p].steps[i].storeValue);
    }
  }
}

TEST_P(GeneratorSuite, StoreValuesAreGloballyUniqueAndNonZero) {
  const auto programs = GetParam()(baseCfg());
  std::set<Word> values;
  for (const auto& prog : programs) {
    for (const auto& s : prog.steps) {
      if (s.kind != StepKind::Store) continue;
      EXPECT_NE(s.storeValue, 0u);
      EXPECT_TRUE(values.insert(s.storeValue).second)
          << "duplicate store value " << s.storeValue;
    }
  }
  EXPECT_FALSE(values.empty());
}

TEST_P(GeneratorSuite, AllStepsWithinBounds) {
  const WorkloadConfig cfg = baseCfg();
  const auto programs = GetParam()(cfg);
  EXPECT_EQ(programs.size(), cfg.numProcessors);
  for (const auto& prog : programs) {
    EXPECT_FALSE(prog.steps.empty());
    for (const auto& s : prog.steps) {
      EXPECT_LT(s.block, cfg.numBlocks);
      EXPECT_LT(s.word, cfg.wordsPerBlock);
    }
  }
}

std::string generatorName(const testing::TestParamInfo<Maker>& paramInfo) {
  static const char* const names[] = {"uniform",    "hot",        "prodcons",
                                      "migratory",  "falseshare", "readmostly"};
  return names[paramInfo.index];
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorSuite,
                         testing::Values(&uniformRandom, &hotDefault,
                                         &producerConsumer, &migratory,
                                         &falseSharing, &readMostly),
                         generatorName);

TEST(UniformRandom, MixRoughlyMatchesConfig) {
  WorkloadConfig cfg = baseCfg();
  cfg.opsPerProcessor = 20'000;
  cfg.storePercent = 30;
  cfg.evictPercent = 10;
  const auto programs = uniformRandom(cfg);
  std::uint64_t loads = 0, stores = 0, evicts = 0;
  for (const auto& prog : programs) {
    for (const auto& s : prog.steps) {
      loads += s.kind == StepKind::Load;
      stores += s.kind == StepKind::Store;
      evicts += s.kind == StepKind::Evict;
    }
  }
  const double total = static_cast<double>(loads + stores + evicts);
  EXPECT_NEAR(static_cast<double>(evicts) / total, 0.10, 0.02);
  // Stores are 30% of the remaining 90%.
  EXPECT_NEAR(static_cast<double>(stores) / total, 0.27, 0.02);
}

TEST(HotBlock, ConcentratesTraffic) {
  WorkloadConfig cfg = baseCfg();
  cfg.opsPerProcessor = 10'000;
  const auto programs = hotBlock(cfg, 90, 2);
  std::uint64_t hot = 0, total = 0;
  for (const auto& prog : programs) {
    for (const auto& s : prog.steps) {
      ++total;
      hot += s.block < 2;
    }
  }
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.85);
}

TEST(ProducerConsumer, OnlyProcessorZeroStores) {
  const auto programs = producerConsumer(baseCfg());
  for (std::size_t p = 1; p < programs.size(); ++p) {
    for (const auto& s : programs[p].steps) {
      EXPECT_NE(s.kind, StepKind::Store) << "consumer " << p << " stores";
    }
  }
}

TEST(FalseSharing, EachProcessorOwnsItsWord) {
  const auto programs = falseSharing(baseCfg());
  for (NodeId p = 0; p < programs.size(); ++p) {
    for (const auto& s : programs[p].steps) {
      EXPECT_EQ(s.word, p % baseCfg().wordsPerBlock);
    }
  }
}

TEST(MakeStoreValue, EncodesProcessorAndSequence) {
  EXPECT_NE(makeStoreValue(0, 0), makeStoreValue(1, 0));
  EXPECT_NE(makeStoreValue(0, 0), makeStoreValue(0, 1));
  EXPECT_NE(makeStoreValue(0, 0), 0u);
}

}  // namespace
}  // namespace lcdc::workload
