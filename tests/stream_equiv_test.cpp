// Streaming equals batch — the acceptance property of the observer
// pipeline redesign.  One execution feeds a TeeSink carrying both a Trace
// recorder and a live StreamCheckerSet; the recorded trace then goes
// through batch checkAll (which replays through the same streaming cores).
// The two reports must agree byte-for-byte: same violations in the same
// order, same primary check, same per-claim counts — on clean runs, on
// every protocol mutant, under SC and TSO, on the directory and the
// snooping-bus models, and under adversarial manual schedules.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "bus/bus_system.hpp"
#include "common/expect.hpp"
#include "proto/observer.hpp"
#include "tardis/tardis_system.hpp"
#include "testutil.hpp"
#include "verify/stream.hpp"

namespace lcdc {
namespace {

void expectSameReport(const verify::CheckReport& streaming,
                      const verify::CheckReport& batch,
                      const std::string& what) {
  EXPECT_EQ(streaming.summary(), batch.summary()) << what;
  EXPECT_EQ(streaming.primaryCheck(), batch.primaryCheck()) << what;
  EXPECT_EQ(streaming.countsByCheck(), batch.countsByCheck()) << what;
  ASSERT_EQ(streaming.violations.size(), batch.violations.size()) << what;
  for (std::size_t i = 0; i < streaming.violations.size(); ++i) {
    EXPECT_EQ(streaming.violations[i].check, batch.violations[i].check)
        << what << " violation " << i;
    EXPECT_EQ(streaming.violations[i].detail, batch.violations[i].detail)
        << what << " violation " << i;
  }
}

/// Execute one directory-model run with both pipelines attached and
/// compare.  Returns false if the simulation itself failed (deadlock /
/// invariant) before producing comparable reports; bumps *violating when
/// the (agreeing) reports actually flagged something.
bool checkDirectoryEquivalence(const SystemConfig& cfg,
                               const std::vector<workload::Program>& programs,
                               const std::string& what,
                               std::size_t* violating = nullptr) {
  const verify::VerifyConfig vc = proto::verifyConfigFor(cfg);
  trace::Trace trace;
  verify::StreamCheckerSet checkers(vc);
  proto::TeeSink tee{&trace, &checkers};
  sim::System sys(cfg, tee);
  for (NodeId p = 0; p < cfg.numProcessors && p < programs.size(); ++p) {
    sys.setProgram(p, programs[p]);
  }
  try {
    if (!sys.run(20'000'000).ok()) return false;
  } catch (const ProtocolError&) {
    return false;
  }
  checkers.finish();
  expectSameReport(checkers.report(), verify::checkAll(trace, vc), what);
  if (violating != nullptr && !checkers.report().ok()) ++*violating;
  return true;
}

SystemConfig contendedConfig(std::uint64_t seed, Mutant mutant,
                             std::uint32_t storeBufferDepth) {
  SystemConfig cfg;
  cfg.numProcessors = 6;
  cfg.numDirectories = 2;
  cfg.numBlocks = 6;
  cfg.cacheCapacity = 2;
  cfg.seed = seed;
  cfg.proto.mutant = mutant;
  cfg.storeBufferDepth = storeBufferDepth;
  return cfg;
}

std::vector<workload::Program> contendedPrograms(const SystemConfig& cfg,
                                                 std::uint64_t seed) {
  auto w = test::workloadFor(cfg, 600, seed * 31 + 7);
  w.storePercent = 50;
  w.evictPercent = 12;
  return workload::hotBlock(w, 85, 3);
}

TEST(StreamEquiv, CleanContendedRunsUnderScAndTso) {
  std::size_t compared = 0;
  for (const std::uint32_t sb : {0U, 4U}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const SystemConfig cfg = contendedConfig(seed, Mutant::None, sb);
      if (checkDirectoryEquivalence(
              cfg, contendedPrograms(cfg, seed),
              (sb ? "tso seed " : "sc seed ") + std::to_string(seed))) {
        ++compared;
      }
    }
  }
  EXPECT_GE(compared, 10u);
}

// Every mutant, SC and TSO: wherever the batch suite flags a violation,
// the live pipeline must flag the identical one (and vice versa).  Runs
// that die in the simulator (deadlock watchdog, Appendix-B invariant)
// never reach the checkers in either mode, so they are skipped alike.
TEST(StreamEquiv, MutantCorpusProducesIdenticalViolations) {
  const Mutant mutants[] = {Mutant::SkipInvAckWait, Mutant::StaleDataFromHome,
                            Mutant::IgnoreInvalidation,
                            Mutant::ForwardStaleValue, Mutant::NoBusyNack,
                            Mutant::NoDeadlockDetection};
  std::size_t compared = 0;
  std::size_t violating = 0;
  for (const Mutant m : mutants) {
    for (const std::uint32_t sb : {0U, 4U}) {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const SystemConfig cfg = contendedConfig(seed, m, sb);
        if (checkDirectoryEquivalence(
                cfg, contendedPrograms(cfg, seed),
                std::string(toString(m)) + (sb ? " tso" : " sc") + " seed " +
                    std::to_string(seed),
                &violating)) {
          ++compared;
        }
      }
    }
  }
  EXPECT_GE(compared, 12u) << "mutant corpus mostly died before checking";
  EXPECT_GE(violating, 1u)
      << "no mutant run reached the checkers with a violation — the "
         "equivalence sweep only compared clean reports";
}

// The snooping-bus companion model is the adversarial case for the online
// SC and value-chain cores: fire-and-forget invalidations let loads bind
// stale epochs long after the writer's store, and upgrade stamps lag their
// serialization by the whole snoop delay.
TEST(StreamEquiv, BusModelWithDeepSnoopDelays) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    bus::BusConfig cfg;
    cfg.numProcessors = 6;
    cfg.numBlocks = 2;
    cfg.wordsPerBlock = 4;
    cfg.cacheCapacity = 1;
    cfg.snoopDelayMax = 48;
    cfg.seed = seed;

    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.wordsPerBlock;
    w.opsPerProcessor = 400;
    w.storePercent = 55;
    w.evictPercent = 15;
    w.seed = seed * 3 + 1;
    const auto programs = workload::hotBlock(w, 90, 2);

    const verify::VerifyConfig vc{cfg.numProcessors};
    trace::Trace trace;
    verify::StreamCheckerSet checkers(vc);
    proto::TeeSink tee{&trace, &checkers};
    bus::BusSystem sys(cfg, tee);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      sys.setProgram(p, programs[p]);
    }
    if (!sys.run().ok()) continue;
    checkers.finish();
    expectSameReport(checkers.report(), verify::checkAll(trace, vc),
                     "bus seed " + std::to_string(seed));
    ++compared;
  }
  EXPECT_GE(compared, 20u);
}

// Manual adversarial delivery (the Section 2.3-style reorderings): the
// scheduler picks the next message uniformly from the whole in-flight bag,
// producing interleavings a timed network would almost never emit.
TEST(StreamEquiv, AdversarialSchedulesStayEquivalent) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 5;
    cfg.numDirectories = 2;
    cfg.numBlocks = 3;
    cfg.cacheCapacity = 2;
    cfg.seed = seed;

    auto w = test::workloadFor(cfg, 250, seed * 13 + 5);
    w.storePercent = 45;
    w.evictPercent = 12;
    const auto programs = workload::hotBlock(w, 85, 3);

    const verify::VerifyConfig vc = proto::verifyConfigFor(cfg);
    trace::Trace trace;
    verify::StreamCheckerSet checkers(vc);
    proto::TeeSink tee{&trace, &checkers};
    sim::System sys(cfg, tee, net::Network::Mode::Manual);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      sys.setProgram(p, programs[p]);
    }
    for (NodeId p = 0; p < cfg.numProcessors; ++p) sys.kick(p);

    Rng scheduler(seed ^ 0xADBEEF);
    std::uint64_t steps = 0;
    while (steps++ < 3'000'000) {
      if (!sys.network().empty()) {
        sys.deliverManual(
            scheduler.uniform(0, sys.network().pending().size() - 1));
      } else if (!sys.allProgramsDone()) {
        sys.advanceTime(cfg.retryDelay * 2 + 1);
      } else {
        break;
      }
    }
    ASSERT_TRUE(sys.allProgramsDone());
    checkers.finish();
    expectSameReport(checkers.report(), verify::checkAll(trace, vc),
                     "adversary seed " + std::to_string(seed));
    EXPECT_TRUE(checkers.report().ok());
  }
}

// Per-backend equivalence: the same TeeSink discipline must hold on the
// Tardis backend — including when the report is non-empty (the seeded
// drop-lease-bump mutant), so violation ordering and details are pinned
// across both pipelines on a second protocol.
TEST(StreamEquiv, TardisRunsStayEquivalentCleanAndMutated) {
  std::size_t violating = 0;
  for (const Mutant mutant : {Mutant::None, Mutant::DropLeaseBump}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SystemConfig cfg;
      cfg.protocol = ProtocolKind::Tardis;
      cfg.numProcessors = 6;
      cfg.numDirectories = 2;
      cfg.numBlocks = 6;
      cfg.cacheCapacity = 2;
      cfg.seed = seed;
      cfg.proto.mutant = mutant;
      cfg.proto.leaseLength = 8;

      auto w = test::workloadFor(cfg, 600, seed * 31 + 7);
      w.storePercent = 50;
      w.evictPercent = 12;
      const auto programs = workload::hotBlock(w, 85, 3);
      const std::string what = std::string("tardis ") + toString(mutant) +
                               " seed " + std::to_string(seed);

      const verify::VerifyConfig vc = proto::verifyConfigFor(cfg);
      trace::Trace trace;
      verify::StreamCheckerSet checkers(vc);
      proto::TeeSink tee{&trace, &checkers};
      tardis::TardisSystem sys(cfg, tee);
      for (NodeId p = 0; p < cfg.numProcessors; ++p) {
        sys.setProgram(p, programs[p]);
      }
      try {
        if (!sys.run(20'000'000).ok()) continue;
      } catch (const ProtocolError&) {
        continue;
      }
      checkers.finish();
      expectSameReport(checkers.report(), verify::checkAll(trace, vc), what);
      if (mutant == Mutant::None) {
        EXPECT_TRUE(checkers.report().ok()) << what;
      } else if (!checkers.report().ok()) {
        violating += 1;
      }
    }
  }
  EXPECT_GT(violating, 0u)
      << "drop-lease-bump never produced a comparable violating report";
}

}  // namespace
}  // namespace lcdc
