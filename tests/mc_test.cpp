// Model-checker tests: the faithful protocol passes exhaustive exploration
// of small configurations; mutants are refuted; and the state count grows
// explosively with the configuration — the paper's core scalability
// argument against this class of techniques.
#include <gtest/gtest.h>

#include "mc/model_checker.hpp"

namespace lcdc {
namespace {

TEST(ModelChecker, TwoProcsOneBlockIsSafe) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_FALSE(r.hitStateLimit);
  EXPECT_GT(r.statesExplored, 100u);
}

TEST(ModelChecker, TwoProcsOneBlockNoEvictions) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.allowEvictions = false;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_FALSE(r.hitStateLimit);
}

TEST(ModelChecker, ThreeProcsOneBlockIsSafe) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 1;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_FALSE(r.hitStateLimit);
}

TEST(ModelChecker, WithoutPutSharedIsSafe) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.putSharedEnabled = false;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
}

TEST(ModelChecker, ExplorationIsDeterministic) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  const mc::McResult a = mc::explore(cfg);
  const mc::McResult b = mc::explore(cfg);
  EXPECT_EQ(a.statesExplored, b.statesExplored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.frontierPeak, b.frontierPeak);
}

TEST(ModelChecker, EvictionsEnlargeTheSpace) {
  mc::McConfig off;
  off.numProcessors = 2;
  off.numBlocks = 1;
  off.allowEvictions = false;
  mc::McConfig on = off;
  on.allowEvictions = true;
  const mc::McResult a = mc::explore(off);
  const mc::McResult b = mc::explore(on);
  EXPECT_GT(b.statesExplored, a.statesExplored)
      << "the Section 2.5 actions must add reachable states";
}

TEST(ModelChecker, StateCountExplodesWithBlocks) {
  mc::McConfig one;
  one.numProcessors = 2;
  one.numBlocks = 1;
  const mc::McResult r1 = mc::explore(one);

  mc::McConfig two = one;
  two.numBlocks = 2;
  two.maxStates = 100'000;
  const mc::McResult r2 = mc::explore(two);

  // Adding a block multiplies (roughly squares) the space: per-block state
  // is near-independent, so this is the explosion the paper warns about.
  EXPECT_TRUE(r2.hitStateLimit || r2.statesExplored > 10 * r1.statesExplored)
      << "1 block: " << r1.statesExplored
      << ", 2 blocks: " << r2.statesExplored;
}

TEST(ModelChecker, RefutesSkipInvAckWait) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;  // need two sharers + an upgrader for the race
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_FALSE(r.violations.empty())
      << "mutant survived " << r.statesExplored << " states";
}

TEST(ModelChecker, RefutesNoDeadlockDetection) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::NoDeadlockDetection;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.deadlockFound)
      << "Figure 2 deadlock not reached in " << r.statesExplored << " states";
}

TEST(ModelChecker, RefutesNoBusyNack) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::NoBusyNack;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_FALSE(r.violations.empty() && r.ok())
      << "mutant survived " << r.statesExplored << " states";
  EXPECT_FALSE(r.violations.empty());
}

// -- parallel exploration ----------------------------------------------------

TEST(ParallelMc, ResultsAreIndependentOfJobCount) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.jobs = 1;
  const mc::McResult base = mc::explore(cfg);
  for (const unsigned jobs : {2u, 8u}) {
    cfg.jobs = jobs;
    const mc::McResult r = mc::explore(cfg);
    EXPECT_EQ(r.statesExplored, base.statesExplored) << "jobs=" << jobs;
    EXPECT_EQ(r.transitions, base.transitions) << "jobs=" << jobs;
    EXPECT_EQ(r.frontierPeak, base.frontierPeak) << "jobs=" << jobs;
    EXPECT_EQ(r.wavesCompleted, base.wavesCompleted) << "jobs=" << jobs;
    EXPECT_EQ(r.ok(), base.ok()) << "jobs=" << jobs;
    EXPECT_EQ(r.deadlockFound, base.deadlockFound) << "jobs=" << jobs;
  }
}

TEST(ParallelMc, MutantVerdictIsIndependentOfJobCount) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  cfg.jobs = 1;
  const mc::McResult base = mc::explore(cfg);
  ASSERT_FALSE(base.ok());
  for (const unsigned jobs : {2u, 8u}) {
    cfg.jobs = jobs;
    const mc::McResult r = mc::explore(cfg);
    EXPECT_EQ(r.statesExplored, base.statesExplored) << "jobs=" << jobs;
    EXPECT_FALSE(r.ok()) << "jobs=" << jobs;
  }
}

TEST(ParallelMc, StateCapDrainsCleanlyAndDeterministically) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.maxStates = 500;  // well below the ~2k reachable states
  cfg.jobs = 1;
  const mc::McResult base = mc::explore(cfg);
  EXPECT_TRUE(base.hitStateLimit);
  // The cap is exact: expansion stops at the budget, never beyond it.
  EXPECT_EQ(base.statesExplored, 500u);
  for (const unsigned jobs : {2u, 8u}) {
    cfg.jobs = jobs;
    const mc::McResult r = mc::explore(cfg);
    EXPECT_TRUE(r.hitStateLimit) << "jobs=" << jobs;
    // statesExplored is jobs-invariant even on capped runs (transitions of
    // the final partial wave are not — the cap cuts chunk expansion).
    EXPECT_EQ(r.statesExplored, base.statesExplored) << "jobs=" << jobs;
  }
}

// -- reductions --------------------------------------------------------------

TEST(Reduction, SymmetryShrinksStatesAndPreservesSafety) {
  mc::McConfig plain;
  plain.numProcessors = 2;
  plain.numBlocks = 1;
  mc::McConfig sym = plain;
  sym.symmetry = true;
  const mc::McResult a = mc::explore(plain);
  const mc::McResult b = mc::explore(sym);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  // Two interchangeable processors: the quotient is close to half.
  EXPECT_LT(b.statesExplored, a.statesExplored * 2 / 3)
      << "plain " << a.statesExplored << " vs sym " << b.statesExplored;
}

TEST(Reduction, SymmetryPreservesMutantVerdicts) {
  for (const Mutant m : {Mutant::SkipInvAckWait, Mutant::StaleDataFromHome,
                         Mutant::IgnoreInvalidation, Mutant::NoBusyNack}) {
    mc::McConfig plain;
    plain.numProcessors = 2;
    plain.numBlocks = 1;
    plain.proto.mutant = m;
    mc::McConfig sym = plain;
    sym.symmetry = true;
    const mc::McResult a = mc::explore(plain);
    const mc::McResult b = mc::explore(sym);
    EXPECT_EQ(a.ok(), b.ok()) << "mutant " << toString(m);
    EXPECT_EQ(a.violations.empty(), b.violations.empty())
        << "mutant " << toString(m);
  }
}

TEST(Reduction, PorPreservesSafetyAndCutsTransitions) {
  mc::McConfig plain;
  plain.numProcessors = 3;
  plain.numBlocks = 1;
  plain.maxDepth = 14;  // depth-bounded: keeps the test sub-second
  mc::McConfig por = plain;
  por.por = true;
  const mc::McResult a = mc::explore(plain);
  const mc::McResult b = mc::explore(por);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_LE(b.transitions, a.transitions);
  EXPECT_GT(b.ampleStates, 0u) << "ample sets never applied — POR inert";
}

TEST(Reduction, PorPreservesMutantVerdicts) {
  for (const Mutant m : {Mutant::SkipInvAckWait, Mutant::NoBusyNack,
                         Mutant::NoDeadlockDetection}) {
    mc::McConfig plain;
    plain.numProcessors = 2;
    plain.numBlocks = 1;
    plain.proto.mutant = m;
    mc::McConfig red = plain;
    red.symmetry = true;
    red.por = true;
    const mc::McResult a = mc::explore(plain);
    const mc::McResult b = mc::explore(red);
    EXPECT_EQ(a.ok(), b.ok()) << "mutant " << toString(m);
    EXPECT_EQ(a.deadlockFound, b.deadlockFound) << "mutant " << toString(m);
  }
}

TEST(Reduction, ModelDataCatchesForwardStaleValue) {
  // Control-state projection alone cannot see this bug: the protocol
  // messages are all legal, only the *value* forwarded is stale.
  mc::McConfig control;
  control.numProcessors = 2;
  control.numBlocks = 1;
  control.proto.mutant = Mutant::ForwardStaleValue;
  const mc::McResult a = mc::explore(control);
  EXPECT_TRUE(a.ok()) << "control projection unexpectedly flags values";

  mc::McConfig data = control;
  data.modelData = true;
  const mc::McResult b = mc::explore(data);
  EXPECT_FALSE(b.ok()) << "value coherence missed the stale forward in "
                       << b.statesExplored << " states";
}

// -- counterexamples ---------------------------------------------------------

TEST(Counterexample, ViolationYieldsASchedule) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  const mc::McResult r = mc::explore(cfg);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->kind, "violation");
  EXPECT_FALSE(r.counterexample->schedule.empty());
  EXPECT_FALSE(r.counterexample->detail.empty());
  // Every step renders.
  for (const mc::Action& a : r.counterexample->schedule) {
    EXPECT_FALSE(mc::toString(a).empty());
  }
}

TEST(Counterexample, DeadlockYieldsASchedule) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::NoDeadlockDetection;
  const mc::McResult r = mc::explore(cfg);
  ASSERT_TRUE(r.deadlockFound);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->kind, "deadlock");
  EXPECT_FALSE(r.counterexample->schedule.empty());
}

TEST(Counterexample, PristineProtocolYieldsNone) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.counterexample.has_value());
}

// -- golden counts (binary engine == string engine) ---------------------------
//
// Exact state/transition/frontier/wave counts recorded from the original
// string-key engine.  The binary encoding pipeline must reproduce them
// byte-identically — any drift means the canonical equivalence classes
// changed.

struct GoldenCase {
  NodeId procs;
  BlockId blocks;
  bool symmetry;
  bool por;
  bool modelData;
  std::uint64_t maxDepth;
  std::uint64_t states;
  std::uint64_t transitions;
  std::uint64_t frontierPeak;
  std::uint64_t waves;
};

TEST(GoldenCounts, MatchTheStringEngine) {
  const GoldenCase cases[] = {
      // procs blocks sym  por  data depth states transitions peak waves
      {2, 1, false, false, false, 0, 1998, 4988, 208, 27},
      {2, 1, true, false, false, 0, 1013, 2529, 105, 27},
      {2, 1, false, true, false, 0, 1998, 4988, 208, 27},
      {2, 1, true, true, false, 0, 1013, 2529, 105, 27},
      {2, 1, false, false, true, 0, 12189, 33236, 981, 31},
      {2, 1, true, true, true, 0, 6149, 16752, 492, 31},
      {3, 1, false, false, false, 12, 10508, 41811, 3909, 12},
      {3, 1, true, false, false, 12, 1814, 7229, 664, 12},
      {3, 1, false, true, false, 12, 10508, 41661, 3909, 12},
      {3, 1, true, true, false, 12, 1814, 7204, 664, 12},
      {2, 2, false, false, false, 10, 11034, 58992, 4980, 10},
      {2, 2, true, true, false, 10, 5530, 29570, 2490, 10},
      {3, 2, true, true, false, 8, 4833, 41424, 2858, 8},
  };
  for (const GoldenCase& g : cases) {
    mc::McConfig cfg;
    cfg.numProcessors = g.procs;
    cfg.numBlocks = g.blocks;
    cfg.symmetry = g.symmetry;
    cfg.por = g.por;
    cfg.modelData = g.modelData;
    cfg.maxDepth = g.maxDepth;
    const mc::McResult r = mc::explore(cfg);
    const std::string label =
        std::to_string(g.procs) + "x" + std::to_string(g.blocks) +
        (g.symmetry ? " sym" : "") + (g.por ? " por" : "") +
        (g.modelData ? " data" : "") +
        (g.maxDepth != 0 ? " depth=" + std::to_string(g.maxDepth) : "");
    EXPECT_EQ(r.statesExplored, g.states) << label;
    EXPECT_EQ(r.transitions, g.transitions) << label;
    EXPECT_EQ(r.frontierPeak, g.frontierPeak) << label;
    EXPECT_EQ(r.wavesCompleted, g.waves) << label;
    EXPECT_TRUE(r.ok()) << label;
  }
}

// -- memory limit -------------------------------------------------------------

TEST(MemLimit, StopsGracefullyAtAWaveBoundary) {
  // The wave at which the limit trips depends on the run's actual memory
  // footprint (arena slack, container capacities), which varies with jobs
  // and scheduling — but the STOP is always wave-aligned: whatever wave
  // count a mem-limited run reports, its counts must be byte-identical to
  // a --max-depth run cut at that same wave count.
  const auto checkWaveAligned = [](unsigned jobs) {
    mc::McConfig cfg;
    cfg.numProcessors = 3;
    cfg.numBlocks = 1;
    cfg.jobs = jobs;
    cfg.memLimitMb = 4;  // far below what full 3x1 needs
    const mc::McResult r = mc::explore(cfg);
    EXPECT_TRUE(r.memLimitHit);
    EXPECT_TRUE(r.ok()) << "a mem-limited clean run is not a violation";
    EXPECT_FALSE(r.hitStateLimit);
    EXPECT_GT(r.wavesCompleted, 0u) << "must stop between waves, not before";
    EXPECT_GT(r.statesExplored, 0u);

    mc::McConfig depthCfg = cfg;
    depthCfg.memLimitMb = 0;
    depthCfg.maxDepth = r.wavesCompleted;
    const mc::McResult rd = mc::explore(depthCfg);
    EXPECT_FALSE(rd.memLimitHit);
    EXPECT_EQ(r.wavesCompleted, rd.wavesCompleted) << "jobs=" << jobs;
    EXPECT_EQ(r.statesExplored, rd.statesExplored) << "jobs=" << jobs;
    EXPECT_EQ(r.transitions, rd.transitions) << "jobs=" << jobs;
    EXPECT_EQ(r.violations.size(), rd.violations.size());
  };
  checkWaveAligned(1);
  checkWaveAligned(2);
}

TEST(MemLimit, GenerousLimitDoesNotTrigger) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.memLimitMb = 4096;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_FALSE(r.memLimitHit);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.statesExplored, 1998u);
}

// -- perf instrumentation -----------------------------------------------------

TEST(Perf, CountersArePopulatedAndTimingIsOptIn) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  const mc::McResult off = mc::explore(cfg);
  // Byte counters are always on.
  EXPECT_EQ(off.perf.storedStates, off.statesExplored);
  EXPECT_EQ(off.perf.encodeCalls, off.transitions + 1) << "root + successors";
  EXPECT_EQ(off.perf.insertCalls, off.transitions + 1);
  EXPECT_GT(off.perf.storedEncodingBytes, 0u);
  EXPECT_GT(off.visitedBytes, 0u);
  EXPECT_GT(off.frontierBytesPeak, 0u);
  std::uint64_t probes = 0;
  for (const std::uint64_t b : off.perf.probeHist) probes += b;
  EXPECT_EQ(probes, off.perf.insertCalls) << "every insert lands in a bucket";
  // Timing is zero unless requested.
  EXPECT_EQ(off.perf.encodeNanos, 0u);
  EXPECT_EQ(off.perf.expandNanos, 0u);

  mc::McConfig on = cfg;
  on.perf = true;
  const mc::McResult timed = mc::explore(on);
  EXPECT_EQ(timed.perf.storedStates, off.perf.storedStates);
  EXPECT_EQ(timed.perf.storedEncodingBytes, off.perf.storedEncodingBytes)
      << "stored encoding bytes are deterministic";
  EXPECT_GT(timed.perf.expandNanos, 0u);
  EXPECT_GT(timed.perf.encodeNanos, 0u);
}

}  // namespace
}  // namespace lcdc
