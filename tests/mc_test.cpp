// Model-checker tests: the faithful protocol passes exhaustive exploration
// of small configurations; mutants are refuted; and the state count grows
// explosively with the configuration — the paper's core scalability
// argument against this class of techniques.
#include <gtest/gtest.h>

#include "mc/model_checker.hpp"

namespace lcdc {
namespace {

TEST(ModelChecker, TwoProcsOneBlockIsSafe) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_FALSE(r.hitStateLimit);
  EXPECT_GT(r.statesExplored, 100u);
}

TEST(ModelChecker, TwoProcsOneBlockNoEvictions) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.allowEvictions = false;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_FALSE(r.hitStateLimit);
}

TEST(ModelChecker, ThreeProcsOneBlockIsSafe) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 1;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_FALSE(r.hitStateLimit);
}

TEST(ModelChecker, WithoutPutSharedIsSafe) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.putSharedEnabled = false;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
}

TEST(ModelChecker, ExplorationIsDeterministic) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  const mc::McResult a = mc::explore(cfg);
  const mc::McResult b = mc::explore(cfg);
  EXPECT_EQ(a.statesExplored, b.statesExplored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.frontierPeak, b.frontierPeak);
}

TEST(ModelChecker, EvictionsEnlargeTheSpace) {
  mc::McConfig off;
  off.numProcessors = 2;
  off.numBlocks = 1;
  off.allowEvictions = false;
  mc::McConfig on = off;
  on.allowEvictions = true;
  const mc::McResult a = mc::explore(off);
  const mc::McResult b = mc::explore(on);
  EXPECT_GT(b.statesExplored, a.statesExplored)
      << "the Section 2.5 actions must add reachable states";
}

TEST(ModelChecker, StateCountExplodesWithBlocks) {
  mc::McConfig one;
  one.numProcessors = 2;
  one.numBlocks = 1;
  const mc::McResult r1 = mc::explore(one);

  mc::McConfig two = one;
  two.numBlocks = 2;
  two.maxStates = 100'000;
  const mc::McResult r2 = mc::explore(two);

  // Adding a block multiplies (roughly squares) the space: per-block state
  // is near-independent, so this is the explosion the paper warns about.
  EXPECT_TRUE(r2.hitStateLimit || r2.statesExplored > 10 * r1.statesExplored)
      << "1 block: " << r1.statesExplored
      << ", 2 blocks: " << r2.statesExplored;
}

TEST(ModelChecker, RefutesSkipInvAckWait) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;  // need two sharers + an upgrader for the race
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_FALSE(r.violations.empty())
      << "mutant survived " << r.statesExplored << " states";
}

TEST(ModelChecker, RefutesNoDeadlockDetection) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::NoDeadlockDetection;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.deadlockFound)
      << "Figure 2 deadlock not reached in " << r.statesExplored << " states";
}

TEST(ModelChecker, RefutesNoBusyNack) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 1;
  cfg.proto.mutant = Mutant::NoBusyNack;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_FALSE(r.violations.empty() && r.ok())
      << "mutant survived " << r.statesExplored << " states";
  EXPECT_FALSE(r.violations.empty());
}

}  // namespace
}  // namespace lcdc
