// Fault injection: each protocol mutant is a realistic coherence bug of the
// subtle kind the paper says "would be missed by high-level intuitive
// reasoning".  The Lamport-clock checkers (or, for some mutants, the
// always-on Appendix-B invariant checks / the progress watchdog) must catch
// every one of them — this is the adversarial evidence that the
// verification technique has teeth.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/expect.hpp"
#include "tardis/tardis_system.hpp"
#include "testutil.hpp"

namespace lcdc {
namespace {

struct Detection {
  bool detected = false;
  std::string how;       ///< "checker:<name>", "invariant", "deadlock", ...
  std::uint64_t seed = 0;
};

/// Run contended workloads under the given mutant over a seed sweep and
/// report how (and how quickly) the bug is detected.
Detection hunt(Mutant mutant, std::uint64_t maxSeeds = 40) {
  for (std::uint64_t seed = 1; seed <= maxSeeds; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 6;
    cfg.cacheCapacity = 2;
    cfg.seed = seed;
    cfg.proto.mutant = mutant;

    auto w = test::workloadFor(cfg, 600, seed * 31 + 7);
    w.storePercent = 50;
    w.evictPercent = 12;
    const auto programs = workload::hotBlock(w, 85, 3);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    try {
      const sim::RunResult result = system.run(20'000'000);
      if (result.outcome == sim::RunResult::Outcome::Deadlock) {
        return Detection{true, "deadlock-watchdog", seed};
      }
      if (result.outcome == sim::RunResult::Outcome::Livelock) {
        return Detection{true, "livelock-watchdog", seed};
      }
      const auto report = verify::checkAll(
          trace, verify::VerifyConfig{cfg.numProcessors});
      if (!report.ok()) {
        return Detection{true, "checker:" + report.violations.front().check,
                         seed};
      }
    } catch (const ProtocolError& e) {
      return Detection{true, std::string("invariant: ") + e.what(), seed};
    }
  }
  return Detection{};
}

TEST(Mutant, FaithfulProtocolIsNeverFlagged) {
  const Detection d = hunt(Mutant::None, 12);
  EXPECT_FALSE(d.detected) << "false positive at seed " << d.seed << " via "
                           << d.how;
}

TEST(Mutant, SkipInvAckWaitIsCaught) {
  const Detection d = hunt(Mutant::SkipInvAckWait);
  EXPECT_TRUE(d.detected);
  SCOPED_TRACE(d.how);
}

TEST(Mutant, StaleDataFromHomeIsCaught) {
  const Detection d = hunt(Mutant::StaleDataFromHome);
  EXPECT_TRUE(d.detected);
}

TEST(Mutant, IgnoreInvalidationIsCaught) {
  const Detection d = hunt(Mutant::IgnoreInvalidation);
  EXPECT_TRUE(d.detected);
}

TEST(Mutant, ForwardStaleValueIsCaught) {
  const Detection d = hunt(Mutant::ForwardStaleValue);
  EXPECT_TRUE(d.detected);
}

TEST(Mutant, NoBusyNackIsCaught) {
  const Detection d = hunt(Mutant::NoBusyNack);
  EXPECT_TRUE(d.detected);
}

TEST(Mutant, NoDeadlockDetectionIsCaught) {
  const Detection d = hunt(Mutant::NoDeadlockDetection);
  EXPECT_TRUE(d.detected);
  // The missing fix manifests as the Figure 2 hang, not as a value error.
  EXPECT_TRUE(d.how.find("deadlock") != std::string::npos ||
              d.how.find("livelock") != std::string::npos)
      << d.how;
}

/// The Tardis counterpart of `hunt`: same contended shape, Tardis backend.
/// Tardis has no invalidations to drop, so its seeded mutant attacks the
/// timestamp discipline itself; the *unchanged* checkers must still object.
Detection huntTardis(Mutant mutant, std::uint64_t maxSeeds = 40) {
  for (std::uint64_t seed = 1; seed <= maxSeeds; ++seed) {
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::Tardis;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 6;
    cfg.cacheCapacity = 2;
    cfg.seed = seed;
    cfg.proto.mutant = mutant;
    cfg.proto.leaseLength = 8;  // leases must be live when exclusivity hits

    auto w = test::workloadFor(cfg, 600, seed * 31 + 7);
    w.storePercent = 50;
    w.evictPercent = 12;
    const auto programs = workload::hotBlock(w, 85, 3);

    trace::Trace trace;
    tardis::TardisSystem system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    try {
      const RunResult result = system.run(20'000'000);
      if (!result.ok()) {
        return Detection{true, toString(result.outcome), seed};
      }
      const auto report =
          verify::checkAll(trace, proto::verifyConfigFor(cfg));
      if (!report.ok()) {
        return Detection{true, "checker:" + report.violations.front().check,
                         seed};
      }
    } catch (const ProtocolError& e) {
      return Detection{true, std::string("invariant: ") + e.what(), seed};
    }
  }
  return Detection{};
}

TEST(Mutant, FaithfulTardisIsNeverFlagged) {
  const Detection d = huntTardis(Mutant::None, 12);
  EXPECT_FALSE(d.detected) << "false positive at seed " << d.seed << " via "
                           << d.how;
}

TEST(Mutant, DropLeaseBumpIsCaught) {
  // Skipping the hc bump over a handed-out lease frontier lets an
  // exclusive grant land *inside* outstanding read leases — overlapping
  // epochs, which Claim 3(a)/Lemma 1 exist to refuse.
  const Detection d = huntTardis(Mutant::DropLeaseBump);
  EXPECT_TRUE(d.detected);
  EXPECT_TRUE(d.how.find("checker:") == 0) << d.how;
}

}  // namespace
}  // namespace lcdc
