// Seed-equivalence pins: the zero-allocation engine must be byte-identical
// to the seed engine.
//
// The golden hashes below were captured from the pre-optimization engine
// (before the calendar queue, envelope pooling, and SmallVector message
// fields) by running `bench/sim_throughput --hashes` at that commit.  Each
// value folds 20 seeded sub-runs of one (workload kind, network mode) cell:
// full trace text, run outcome, NetStats, and checker verdicts — see
// tests/run_fingerprint.hpp for exactly what is hashed.
//
// If a hot-path change alters a single delivered message, Lamport stamp,
// random-latency draw, or verdict anywhere in the matrix, the cell hash
// flips and this suite names the kind/mode that diverged.  Regenerate pins
// only for *intentional* behavior changes: `sim_throughput --hashes`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "run_fingerprint.hpp"

namespace lcdc {
namespace {

struct GoldenCell {
  workload::Kind kind;
  net::Network::Mode mode;
  std::uint64_t hash;
};

constexpr net::Network::Mode kRandom = net::Network::Mode::RandomLatency;
constexpr net::Network::Mode kFifo = net::Network::Mode::Fifo;

// Captured from the seed engine; 20 seeds per cell.
const GoldenCell kGolden[] = {
    {workload::Kind::Uniform, kRandom, 0x7008b638241c4191ULL},
    {workload::Kind::Uniform, kFifo, 0xee8d9e9dd5215cd9ULL},
    {workload::Kind::Hot, kRandom, 0xef2c0fb46cb65eb2ULL},
    {workload::Kind::Hot, kFifo, 0x028ef607febb46e0ULL},
    {workload::Kind::ProdCons, kRandom, 0x4cb23ae24d7e3ce7ULL},
    {workload::Kind::ProdCons, kFifo, 0xd21e9474b9d1f864ULL},
    {workload::Kind::Migratory, kRandom, 0x9f2ca0437b914317ULL},
    {workload::Kind::Migratory, kFifo, 0x6d4b576e03c42ce6ULL},
    {workload::Kind::FalseShare, kRandom, 0x88ab5fc1525370c0ULL},
    {workload::Kind::FalseShare, kFifo, 0x6a7e401d4b3bb121ULL},
    {workload::Kind::ReadMostly, kRandom, 0x805d4eb30b439b20ULL},
    {workload::Kind::ReadMostly, kFifo, 0xc33c28978485ce2cULL},
};

constexpr std::uint64_t kSeedsPerCell = 20;

TEST(SeedEquiv, MatrixCoversEveryKindAndTimedMode) {
  // The golden table must stay in sync with the kind enum: every workload
  // family under both timed network modes.
  const auto cells = lcdc::testing::fingerprintMatrix();
  ASSERT_EQ(cells.size(), std::size(kGolden));
  for (const auto& cell : cells) {
    bool found = false;
    for (const auto& g : kGolden) {
      found = found || (g.kind == cell.kind && g.mode == cell.mode);
    }
    EXPECT_TRUE(found) << "cell missing from golden table: "
                       << workload::toString(cell.kind);
  }
}

class SeedEquivCell : public ::testing::TestWithParam<GoldenCell> {};

TEST_P(SeedEquivCell, ByteIdenticalToSeedEngine) {
  const GoldenCell& g = GetParam();
  const lcdc::testing::MatrixCell cell{g.kind, g.mode};
  EXPECT_EQ(lcdc::testing::cellFingerprint(cell, kSeedsPerCell), g.hash)
      << "engine diverged from the seed engine for kind="
      << workload::toString(g.kind) << " mode="
      << (g.mode == kFifo ? "fifo" : "random")
      << "; if the behavior change is intentional, regenerate pins with "
         "`sim_throughput --hashes`";
}

std::string cellName(const ::testing::TestParamInfo<GoldenCell>& info) {
  std::string name = workload::toString(info.param.kind);
  name += info.param.mode == kFifo ? "Fifo" : "Random";
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllCells, SeedEquivCell,
                         ::testing::ValuesIn(kGolden), cellName);

}  // namespace
}  // namespace lcdc
