// Tests for the concurrent open-addressing fingerprint set backing the
// model checker's visited table: basic insert/find semantics, the true
// 64-bit-collision fallback (same fingerprint, different state bytes must
// NOT deduplicate), wave-boundary growth, and a multi-threaded stress run
// that cross-checks against a mutex-guarded reference map.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flat_set.hpp"

namespace lcdc {
namespace {

/// Insert a string whose identity is the bytes themselves; `fp` is
/// caller-chosen so collisions can be forced.
std::uint32_t insertStr(FlatFingerprintSet& set, std::uint64_t fp,
                        const std::string& s,
                        std::vector<std::string>& store, bool* inserted) {
  const FlatFingerprintSet::InsertResult r = set.insert(
      fp,
      [&](std::uint32_t payload) { return store[payload] == s; },
      [&]() {
        store.push_back(s);
        return static_cast<std::uint32_t>(store.size() - 1);
      });
  if (inserted != nullptr) *inserted = r.inserted;
  return r.payload;
}

TEST(FlatFingerprintSet, InsertFindAndDuplicate) {
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  bool inserted = false;
  const std::uint32_t a =
      insertStr(set, fingerprintHash(reinterpret_cast<const std::byte*>("a"), 1),
                "a", store, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(set.size(), 1u);
  const std::uint32_t a2 =
      insertStr(set, fingerprintHash(reinterpret_cast<const std::byte*>("a"), 1),
                "a", store, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(set.size(), 1u);

  const auto found = set.find(
      fingerprintHash(reinterpret_cast<const std::byte*>("a"), 1),
      [&](std::uint32_t payload) { return store[payload] == "a"; });
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a);
  const auto missing = set.find(
      fingerprintHash(reinterpret_cast<const std::byte*>("b"), 1),
      [&](std::uint32_t payload) { return store[payload] == "b"; });
  EXPECT_FALSE(missing.has_value());
}

TEST(FlatFingerprintSet, TrueFingerprintCollisionFallsBackToBytes) {
  // Two different states with an identical 64-bit fingerprint: the set
  // must keep BOTH (extra probe), not silently merge them — this is the
  // soundness property hashing alone cannot give.
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  const std::uint64_t fp = 0xDEADBEEFCAFEF00DULL;
  bool inserted = false;
  const std::uint32_t a = insertStr(set, fp, "state-one", store, &inserted);
  EXPECT_TRUE(inserted);
  const std::uint32_t b = insertStr(set, fp, "state-two", store, &inserted);
  EXPECT_TRUE(inserted) << "collision must not deduplicate distinct bytes";
  EXPECT_NE(a, b);
  EXPECT_EQ(set.size(), 2u);
  // Re-inserting either dedups against the right entry.
  EXPECT_EQ(insertStr(set, fp, "state-one", store, &inserted), a);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(insertStr(set, fp, "state-two", store, &inserted), b);
  EXPECT_FALSE(inserted);
  // find() distinguishes them by bytes too.
  const auto f1 = set.find(
      fp, [&](std::uint32_t p) { return store[p] == "state-one"; });
  const auto f2 = set.find(
      fp, [&](std::uint32_t p) { return store[p] == "state-two"; });
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(*f1, a);
  EXPECT_EQ(*f2, b);
}

TEST(FlatFingerprintSet, ZeroFingerprintIsUsable) {
  // fp 0 is the empty-slot marker internally; a real hash of 0 must still
  // round-trip through normalization.
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  bool inserted = false;
  const std::uint32_t a = insertStr(set, 0, "zero", store, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(insertStr(set, 0, "zero", store, &inserted), a);
  EXPECT_FALSE(inserted);
}

TEST(FlatFingerprintSet, ReserveGrowsAndPreservesMembership) {
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  std::vector<std::pair<std::string, std::uint32_t>> entries;
  for (int i = 0; i < 200; ++i) {
    set.reserveFor(1);  // wave boundary: guarantee room before inserting
    const std::string s = "state-" + std::to_string(i);
    bool inserted = false;
    const std::uint32_t id = insertStr(
        set, fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                             s.size()),
        s, store, &inserted);
    EXPECT_TRUE(inserted);
    entries.emplace_back(s, id);
  }
  EXPECT_EQ(set.size(), 200u);
  EXPECT_GE(set.capacity(), 400u) << "rehash must keep load <= 50%";
  for (const auto& [s, id] : entries) {
    const auto found = set.find(
        fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                        s.size()),
        [&](std::uint32_t p) { return store[p] == s; });
    ASSERT_TRUE(found.has_value()) << s;
    EXPECT_EQ(*found, id) << "rehash must preserve payloads";
  }
}

TEST(FlatFingerprintSet, ConcurrentInsertionMatchesReference) {
  // N threads race to insert overlapping key ranges (every key attempted
  // by 2+ threads).  Exactly one inserter may win per key, payloads must
  // be stable, and the final size must equal the distinct-key count.
  constexpr int kThreads = 8;
  constexpr int kKeys = 2000;
  FlatFingerprintSet set(8192);  // pre-sized: no growth mid-"wave"
  std::vector<std::string> store(static_cast<std::size_t>(kKeys) * 2);
  std::atomic<std::uint32_t> nextId{0};
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint32_t>> seen(
      kThreads, std::vector<std::uint32_t>(kKeys));
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeys; ++k) {
        const std::string s = "key-" + std::to_string(k);
        const FlatFingerprintSet::InsertResult r = set.insert(
            fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                            s.size()),
            [&](std::uint32_t payload) { return store[payload] == s; },
            [&]() {
              const std::uint32_t id =
                  nextId.fetch_add(1, std::memory_order_relaxed);
              store[id] = s;
              return id;
            });
        if (r.inserted) wins.fetch_add(1, std::memory_order_relaxed);
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)] =
            r.payload;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(wins.load(), kKeys) << "each key must be inserted exactly once";
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)],
                seen[0][static_cast<std::size_t>(k)])
          << "all threads must agree on key " << k << "'s payload";
    }
  }
}

TEST(FlatFingerprintSet, BytesAccountsForSlabs) {
  FlatFingerprintSet set(1u << 10);
  EXPECT_EQ(set.bytes(), set.capacity() * 12u);
}

}  // namespace
}  // namespace lcdc
