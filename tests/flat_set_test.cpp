// Tests for the concurrent open-addressing fingerprint set backing the
// model checker's visited table: basic insert/find semantics, the true
// 64-bit-collision fallback (same fingerprint, different state bytes must
// NOT deduplicate), wave-boundary growth, and a multi-threaded stress run
// that cross-checks against a mutex-guarded reference map.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flat_set.hpp"

namespace lcdc {
namespace {

/// Insert a string whose identity is the bytes themselves; `fp` is
/// caller-chosen so collisions can be forced.
std::uint32_t insertStr(FlatFingerprintSet& set, std::uint64_t fp,
                        const std::string& s,
                        std::vector<std::string>& store, bool* inserted) {
  const FlatFingerprintSet::InsertResult r = set.insert(
      fp,
      [&](std::uint32_t payload) { return store[payload] == s; },
      [&]() {
        store.push_back(s);
        return static_cast<std::uint32_t>(store.size() - 1);
      });
  if (inserted != nullptr) *inserted = r.inserted;
  return r.payload;
}

TEST(FlatFingerprintSet, InsertFindAndDuplicate) {
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  bool inserted = false;
  const std::uint32_t a =
      insertStr(set, fingerprintHash(reinterpret_cast<const std::byte*>("a"), 1),
                "a", store, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(set.size(), 1u);
  const std::uint32_t a2 =
      insertStr(set, fingerprintHash(reinterpret_cast<const std::byte*>("a"), 1),
                "a", store, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(set.size(), 1u);

  const auto found = set.find(
      fingerprintHash(reinterpret_cast<const std::byte*>("a"), 1),
      [&](std::uint32_t payload) { return store[payload] == "a"; });
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a);
  const auto missing = set.find(
      fingerprintHash(reinterpret_cast<const std::byte*>("b"), 1),
      [&](std::uint32_t payload) { return store[payload] == "b"; });
  EXPECT_FALSE(missing.has_value());
}

TEST(FlatFingerprintSet, TrueFingerprintCollisionFallsBackToBytes) {
  // Two different states with an identical 64-bit fingerprint: the set
  // must keep BOTH (extra probe), not silently merge them — this is the
  // soundness property hashing alone cannot give.
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  const std::uint64_t fp = 0xDEADBEEFCAFEF00DULL;
  bool inserted = false;
  const std::uint32_t a = insertStr(set, fp, "state-one", store, &inserted);
  EXPECT_TRUE(inserted);
  const std::uint32_t b = insertStr(set, fp, "state-two", store, &inserted);
  EXPECT_TRUE(inserted) << "collision must not deduplicate distinct bytes";
  EXPECT_NE(a, b);
  EXPECT_EQ(set.size(), 2u);
  // Re-inserting either dedups against the right entry.
  EXPECT_EQ(insertStr(set, fp, "state-one", store, &inserted), a);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(insertStr(set, fp, "state-two", store, &inserted), b);
  EXPECT_FALSE(inserted);
  // find() distinguishes them by bytes too.
  const auto f1 = set.find(
      fp, [&](std::uint32_t p) { return store[p] == "state-one"; });
  const auto f2 = set.find(
      fp, [&](std::uint32_t p) { return store[p] == "state-two"; });
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(*f1, a);
  EXPECT_EQ(*f2, b);
}

TEST(FlatFingerprintSet, ZeroFingerprintIsUsable) {
  // fp 0 is the empty-slot marker internally; a real hash of 0 must still
  // round-trip through normalization.
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  bool inserted = false;
  const std::uint32_t a = insertStr(set, 0, "zero", store, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(insertStr(set, 0, "zero", store, &inserted), a);
  EXPECT_FALSE(inserted);
}

TEST(FlatFingerprintSet, ReserveGrowsAndPreservesMembership) {
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  std::vector<std::pair<std::string, std::uint32_t>> entries;
  for (int i = 0; i < 200; ++i) {
    set.reserveFor(1);  // wave boundary: guarantee room before inserting
    const std::string s = "state-" + std::to_string(i);
    bool inserted = false;
    const std::uint32_t id = insertStr(
        set, fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                             s.size()),
        s, store, &inserted);
    EXPECT_TRUE(inserted);
    entries.emplace_back(s, id);
  }
  EXPECT_EQ(set.size(), 200u);
  EXPECT_GE(set.capacity(), 400u) << "rehash must keep load <= 50%";
  for (const auto& [s, id] : entries) {
    const auto found = set.find(
        fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                        s.size()),
        [&](std::uint32_t p) { return store[p] == s; });
    ASSERT_TRUE(found.has_value()) << s;
    EXPECT_EQ(*found, id) << "rehash must preserve payloads";
  }
}

TEST(FlatFingerprintSet, ConcurrentInsertionMatchesReference) {
  // N threads race to insert overlapping key ranges (every key attempted
  // by 2+ threads).  Exactly one inserter may win per key, payloads must
  // be stable, and the final size must equal the distinct-key count.
  constexpr int kThreads = 8;
  constexpr int kKeys = 2000;
  FlatFingerprintSet set(8192);  // pre-sized: no growth mid-"wave"
  std::vector<std::string> store(static_cast<std::size_t>(kKeys) * 2);
  std::atomic<std::uint32_t> nextId{0};
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint32_t>> seen(
      kThreads, std::vector<std::uint32_t>(kKeys));
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeys; ++k) {
        const std::string s = "key-" + std::to_string(k);
        const FlatFingerprintSet::InsertResult r = set.insert(
            fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                            s.size()),
            [&](std::uint32_t payload) { return store[payload] == s; },
            [&]() {
              const std::uint32_t id =
                  nextId.fetch_add(1, std::memory_order_relaxed);
              store[id] = s;
              return id;
            });
        if (r.inserted) wins.fetch_add(1, std::memory_order_relaxed);
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)] =
            r.payload;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(wins.load(), kKeys) << "each key must be inserted exactly once";
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)],
                seen[0][static_cast<std::size_t>(k)])
          << "all threads must agree on key " << k << "'s payload";
    }
  }
}

TEST(FlatFingerprintSet, BytesAccountsForSlabs) {
  FlatFingerprintSet set(1u << 10);
  EXPECT_EQ(set.bytes(), set.capacity() * 12u);
}

TEST(FlatFingerprintSet, BytesAfterReserveChargesTheRehashTransient) {
  FlatFingerprintSet set(64);
  // Within the current capacity: no growth, no transient.
  EXPECT_EQ(set.bytesAfterReserve(16), set.bytes());
  // Past 50% load the table doubles; during the rehash both the old and
  // the new slab are live, so the projection must exceed even the final
  // footprint.
  const std::size_t projected = set.bytesAfterReserve(1000);
  EXPECT_GT(projected, set.bytes());
  const std::size_t before = set.bytes();
  set.reserveFor(1000);
  EXPECT_EQ(projected, set.bytes() + before);
}

TEST(FlatFingerprintSet, GrowthBoundaryKeepsPayloadsExact) {
  // Walk insert counts across the 50%-load growth boundary of the initial
  // 64-slot table and verify membership + payload stability through every
  // reserveFor that actually rehashes.
  FlatFingerprintSet set(64);
  std::vector<std::string> store;
  for (int i = 0; i < 200; ++i) {
    set.reserveFor(1);
    const std::string s = "key-" + std::to_string(i);
    insertStr(set,
              fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                              s.size()),
              s, store, nullptr);
    ASSERT_EQ(set.size(), static_cast<std::size_t>(i + 1));
  }
  for (int i = 0; i < 200; ++i) {
    const std::string s = "key-" + std::to_string(i);
    const auto hit = set.find(
        fingerprintHash(reinterpret_cast<const std::byte*>(s.data()),
                        s.size()),
        [&](std::uint32_t payload) { return store[payload] == s; });
    ASSERT_TRUE(hit.has_value()) << s;
    EXPECT_EQ(store[*hit], s);
  }
}

TEST(FlatFingerprintSet, PayloadPastIdSpaceThrowsSimError) {
  // The 2^32-state guard: a payload beyond kMaxPayload (the explorer's
  // state-id space) must raise SimError instead of silently truncating
  // or colliding with the sentinels.
  FlatFingerprintSet set(64);
  const auto never = [](std::uint32_t) { return true; };
  const auto r = set.insert(1, never, [] {
    return FlatFingerprintSet::kMaxPayload;
  });
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(r.payload, FlatFingerprintSet::kMaxPayload);
  EXPECT_THROW(set.insert(2, never,
                          [] { return FlatFingerprintSet::kMaxPayload + 1; }),
               SimError);
  EXPECT_THROW(set.insert(3, never,
                          [] { return FlatFingerprintSet::kPendingPayload; }),
               SimError);
}

TEST(FlatFingerprintSet, CompactModeTrustsTheFingerprint) {
  // Hash compaction: same fingerprint, different bytes => deduplicated
  // anyway, and the equality callback must never run.
  FlatFingerprintSet set(64, FlatFingerprintSet::Mode::Compact);
  EXPECT_EQ(set.mode(), FlatFingerprintSet::Mode::Compact);
  bool equalsCalled = false;
  const auto equals = [&](std::uint32_t) {
    equalsCalled = true;
    return false;
  };
  const auto a = set.insert(42, equals, [] { return 7u; });
  EXPECT_TRUE(a.inserted);
  const auto b = set.insert(42, equals, [] { return 8u; });
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(b.payload, 7u);
  EXPECT_FALSE(equalsCalled);
  EXPECT_EQ(set.size(), 1u);
  const auto hit = set.find(42, equals);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7u);
  EXPECT_FALSE(equalsCalled);
}

TEST(FlatFingerprintSet, ClearKeepsSlabsAndForEachEnumerates) {
  FlatFingerprintSet set(64, FlatFingerprintSet::Mode::Compact);
  const auto never = [](std::uint32_t) { return true; };
  for (std::uint64_t fp = 1; fp <= 10; ++fp) {
    std::uint32_t id = static_cast<std::uint32_t>(fp);
    (void)set.insert(fp * 0x9E3779B97F4A7C15ULL, never, [id] { return id; });
  }
  std::vector<std::uint64_t> seen;
  set.forEachFingerprint([&](std::uint64_t fp) { seen.push_back(fp); });
  EXPECT_EQ(seen.size(), 10u);
  const std::size_t cap = set.capacity();
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.capacity(), cap);
  seen.clear();
  set.forEachFingerprint([&](std::uint64_t fp) { seen.push_back(fp); });
  EXPECT_TRUE(seen.empty());
  // The cleared table is immediately reusable (the per-wave claim-table
  // pattern).
  const auto r = set.insert(99, never, [] { return 1u; });
  EXPECT_TRUE(r.inserted);
}

// -- bitstate filter ----------------------------------------------------------

TEST(BitstateFilter, TestSetRoundTrip) {
  BitstateFilter bloom(1);
  EXPECT_EQ(bloom.bitCount(), 1ULL << 23) << "1 MiB = 2^23 bits";
  EXPECT_EQ(bloom.hashCount(), BitstateFilter::kDefaultHashes);
  EXPECT_EQ(bloom.onesCount(), 0u);
  for (std::uint64_t fp = 1; fp <= 1000; ++fp) {
    EXPECT_FALSE(bloom.testAll(fp * 0x9E3779B97F4A7C15ULL));
  }
  for (std::uint64_t fp = 1; fp <= 1000; ++fp) {
    bloom.setAll(fp * 0x9E3779B97F4A7C15ULL);
  }
  for (std::uint64_t fp = 1; fp <= 1000; ++fp) {
    EXPECT_TRUE(bloom.testAll(fp * 0x9E3779B97F4A7C15ULL));
  }
  EXPECT_GT(bloom.onesCount(), 0u);
  EXPECT_LE(bloom.onesCount(), 3000u);
}

TEST(BitstateFilter, MinimumSizeIsEnforced) {
  BitstateFilter bloom(0);
  EXPECT_EQ(bloom.bitCount(), 1ULL << 20);
  EXPECT_EQ(bloom.bytes(), (1ULL << 20) / 8);
}

TEST(BitstateFilter, LoadWordsRejectsSizeMismatch) {
  BitstateFilter bloom(1);
  EXPECT_THROW(bloom.loadWords(std::vector<std::uint64_t>(16), 3), SimError);
  // Matching size round-trips membership and the stored hash count.
  BitstateFilter other(1);
  other.setAll(12345);
  BitstateFilter copy(1);
  copy.loadWords(other.words(), other.hashCount());
  EXPECT_TRUE(copy.testAll(12345));
  EXPECT_FALSE(copy.testAll(54321));
  EXPECT_EQ(copy.hashCount(), other.hashCount());
}

}  // namespace
}  // namespace lcdc
