// The MC-vs-simulator differential battery (the PR's central soundness
// check): for every protocol variant — pristine plus all six mutants — the
// parallel model checker's verdict at (2 procs, 1 block) must agree with
// the Lamport-clock checkers' verdict on concrete executions of the same
// variant.  Disagreement in either direction is a bug:
//
//   MC flags, checkers never do  -> the MC's abstraction is unsound (false
//                                   alarm) or the checkers have a hole;
//   checkers flag, MC does not   -> the MC's projection abstracted the bug
//                                   away (the state graph is incomplete).
//
// The checker-side evidence combines a seeded simulator sweep at the same
// small shape with replay of the MC's own counterexample; the MC side runs
// both unreduced and under symmetry+POR, which must agree with each other.
#include <gtest/gtest.h>

#include <string>

#include "common/expect.hpp"
#include "mc/model_checker.hpp"
#include "mc/replay.hpp"
#include "tardis/tardis_system.hpp"
#include "testutil.hpp"

namespace lcdc {
namespace {

struct McVerdict {
  bool flagged = false;     ///< violation or deadlock found
  bool deadlock = false;
  std::uint64_t states = 0;
  mc::McResult result;
};

/// Exhaustive verdict at (2 procs, 1 block) with value tracking — the
/// shape every mutant is detectable at (ForwardStaleValue only via values).
McVerdict mcVerdict(Mutant m, bool reduced) {
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = m;
  cfg.modelData = true;
  cfg.symmetry = reduced;
  cfg.por = reduced;
  cfg.jobs = reduced ? 1 : 2;  // exercise the parallel path on the big run
  McVerdict v;
  v.result = mc::explore(cfg);
  EXPECT_FALSE(v.result.hitStateLimit) << "state budget too small for (2,1)";
  v.flagged = !v.result.ok();
  v.deadlock = v.result.deadlockFound;
  v.states = v.result.statesExplored;
  return v;
}

/// Lamport-checker verdict from seeded contended runs at the MC's shape.
bool simulatorFlags(Mutant m, std::uint64_t maxSeeds = 24) {
  for (std::uint64_t seed = 1; seed <= maxSeeds; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.numDirectories = 1;
    cfg.numBlocks = 1;
    cfg.cacheCapacity = 0;
    cfg.seed = seed;
    cfg.proto.mutant = m;

    auto w = test::workloadFor(cfg, 400, seed * 31 + 7);
    w.storePercent = 50;
    w.evictPercent = 10;
    const auto programs = workload::hotBlock(w, 100, 1);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    try {
      const sim::RunResult result = system.run(5'000'000);
      if (result.outcome != sim::RunResult::Outcome::Quiescent) return true;
      const auto report =
          verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
      if (!report.ok()) return true;
    } catch (const ProtocolError&) {
      return true;
    }
  }
  return false;
}

/// Do the streaming checkers flag the MC's own counterexample?
bool replayFlags(Mutant m, const McVerdict& v) {
  if (!v.result.counterexample) return false;
  mc::McConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = m;
  cfg.modelData = true;
  const mc::ReplayResult rep =
      mc::replayCounterexample(cfg, v.result.counterexample->schedule);
  EXPECT_TRUE(rep.divergence.empty())
      << "mutant " << toString(m) << ": " << rep.divergence;
  return rep.flagged();
}

void differential(Mutant m) {
  const McVerdict full = mcVerdict(m, /*reduced=*/false);
  const McVerdict red = mcVerdict(m, /*reduced=*/true);

  // Reductions are sound and complete for these properties: same verdict.
  EXPECT_EQ(full.flagged, red.flagged) << "mutant " << toString(m);
  EXPECT_EQ(full.deadlock, red.deadlock) << "mutant " << toString(m);
  EXPECT_LE(red.states, full.states) << "mutant " << toString(m);

  // Checker-side evidence: a seeded sweep, or the replayed counterexample.
  const bool checkers =
      simulatorFlags(m) || replayFlags(m, full) || replayFlags(m, red);

  EXPECT_EQ(full.flagged, checkers)
      << "mutant " << toString(m) << ": MC "
      << (full.flagged ? "flags" : "is clean") << " but Lamport checkers "
      << (checkers ? "flag" : "are clean");
}

TEST(Differential, Pristine) {
  const McVerdict full = mcVerdict(Mutant::None, false);
  const McVerdict red = mcVerdict(Mutant::None, true);
  EXPECT_FALSE(full.flagged);
  EXPECT_FALSE(red.flagged);
  EXPECT_FALSE(simulatorFlags(Mutant::None))
      << "false positive on the faithful protocol";
}

TEST(Differential, SkipInvAckWait) { differential(Mutant::SkipInvAckWait); }

TEST(Differential, StaleDataFromHome) {
  differential(Mutant::StaleDataFromHome);
}

TEST(Differential, IgnoreInvalidation) {
  differential(Mutant::IgnoreInvalidation);
}

TEST(Differential, ForwardStaleValue) {
  differential(Mutant::ForwardStaleValue);
}

TEST(Differential, NoBusyNack) { differential(Mutant::NoBusyNack); }

TEST(Differential, NoDeadlockDetection) {
  differential(Mutant::NoDeadlockDetection);
}

TEST(Differential, EveryMutantIsRefutedExhaustively) {
  // Not just consistency — the battery must have teeth: all six bugs are
  // found by the MC at the smallest interesting shape.
  for (const Mutant m :
       {Mutant::SkipInvAckWait, Mutant::StaleDataFromHome,
        Mutant::IgnoreInvalidation, Mutant::ForwardStaleValue,
        Mutant::NoBusyNack, Mutant::NoDeadlockDetection}) {
    const McVerdict v = mcVerdict(m, /*reduced=*/true);
    EXPECT_TRUE(v.flagged) << "mutant " << toString(m) << " survived "
                           << v.states << " states";
  }
}

// -- Tardis backend -----------------------------------------------------------
//
// The same MC<->checkers agreement, against the second model-checkable
// backend.  The rank-compressed Tardis space at (2,1) outgrows any fixed
// bound (timestamps keep minting fresh ranks), so the pristine side is
// bounded-exhaustive rather than exhaustive: every state within the cap is
// invariant-clean.  The seeded mutant must be refuted *inside* the bound,
// and the concrete simulator + unchanged Lamport checkers must agree.

mc::McResult tardisMc(Mutant m) {
  mc::McConfig cfg;
  cfg.protocol = ProtocolKind::Tardis;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  cfg.proto.mutant = m;
  cfg.maxStates = 150'000;
  return mc::explore(cfg);
}

/// Lamport-checker verdict from seeded Tardis runs at a small shape.
bool tardisSimulatorFlags(Mutant m, std::uint64_t maxSeeds = 24) {
  for (std::uint64_t seed = 1; seed <= maxSeeds; ++seed) {
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::Tardis;
    cfg.numProcessors = 2;
    cfg.numDirectories = 1;
    cfg.numBlocks = 1;
    cfg.cacheCapacity = 0;
    cfg.seed = seed;
    cfg.proto.mutant = m;
    cfg.proto.leaseLength = 8;

    auto w = test::workloadFor(cfg, 400, seed * 31 + 7);
    w.storePercent = 50;
    const auto programs = workload::hotBlock(w, 100, 1);

    trace::Trace trace;
    tardis::TardisSystem system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    try {
      if (!system.run(5'000'000).ok()) return true;
      const auto report =
          verify::checkAll(trace, proto::verifyConfigFor(cfg));
      if (!report.ok()) return true;
    } catch (const ProtocolError&) {
      return true;
    }
  }
  return false;
}

TEST(TardisDifferential, Pristine) {
  const mc::McResult r = tardisMc(Mutant::None);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "deadlock"
                                               : r.violations.front());
  EXPECT_FALSE(tardisSimulatorFlags(Mutant::None))
      << "false positive on the faithful Tardis protocol";
}

TEST(TardisDifferential, DropLeaseBump) {
  const mc::McResult r = tardisMc(Mutant::DropLeaseBump);
  EXPECT_FALSE(r.ok()) << "MC missed the dropped lease bump";
  ASSERT_FALSE(r.violations.empty());
  // Caught by name: the violated invariant is the lease-frontier clearance
  // (exclusive grant must be timestamped above every outstanding lease).
  EXPECT_NE(r.violations.front().find("lease frontier"), std::string::npos)
      << r.violations.front();
  EXPECT_TRUE(tardisSimulatorFlags(Mutant::DropLeaseBump))
      << "MC flags drop-lease-bump but the Lamport checkers never do";
}

}  // namespace
}  // namespace lcdc
