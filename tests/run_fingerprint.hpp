// Deterministic fingerprints of full simulate-and-verify runs.
//
// A fingerprint folds everything the engine promises to keep byte-stable
// into one 64-bit FNV-1a hash: the serialized trace text (operations,
// stamps, serializations, values), the network traffic counters, the run
// outcome, and the checker verdict.  The seed-equivalence suite pins a
// matrix of these hashes captured from the original (pre-calendar-queue,
// pre-pooling) engine; any hot-path change that alters a single delivered
// message, Lamport stamp or verdict flips the hash.
//
// Shared between tests/seed_equiv_test.cpp and bench/sim_throughput.cpp
// (the bench's --hashes mode regenerates the matrix for re-pinning).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "common/config.hpp"
#include "proto/observer.hpp"
#include "sim/system.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "verify/stream.hpp"
#include "workload/generators.hpp"

namespace lcdc::testing {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline void fnv(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

inline void fnvU64(std::uint64_t& h, std::uint64_t v) { fnv(h, &v, 8); }

inline void fnvStr(std::uint64_t& h, const std::string& s) {
  fnv(h, s.data(), s.size());
}

/// One cell of the seed-equivalence matrix: fixed workload kind and
/// network mode, `seeds` sub-runs with shapes derived from the seed.
struct MatrixCell {
  workload::Kind kind;
  net::Network::Mode mode;
};

/// Derive the sub-run configuration for (cell, seed).  Varies capacity,
/// Put-Shared, store buffering and latency spread with the seed so the
/// matrix crosses every engine feature with every workload family.
inline SystemConfig matrixConfig(std::uint64_t seed) {
  SystemConfig sys;
  sys.numProcessors = 3 + static_cast<NodeId>(seed % 4);      // 3..6
  sys.numDirectories = 1 + static_cast<NodeId>(seed % 2);     // 1..2
  sys.numBlocks = 6 + static_cast<BlockId>(seed % 5);         // 6..10
  sys.cacheCapacity = (seed % 2 == 0) ? 2 : 0;
  sys.minLatency = 1;
  sys.maxLatency = 12 + (seed % 3) * 17;                      // 12/29/46
  sys.retryDelay = 4 + seed % 7;
  sys.proto.putSharedEnabled = seed % 4 != 3;
  sys.storeBufferDepth = (seed % 3 == 0) ? 2 : 0;
  sys.seed = 0x5EEDULL ^ (seed * 0x9E3779B97F4A7C15ULL);
  return sys;
}

inline workload::WorkloadConfig matrixWorkload(const SystemConfig& sys,
                                               std::uint64_t seed) {
  workload::WorkloadConfig w;
  w.numProcessors = sys.numProcessors;
  w.numBlocks = sys.numBlocks;
  w.wordsPerBlock = sys.proto.wordsPerBlock;
  w.opsPerProcessor = 120 + seed % 60;
  w.storePercent = 25 + static_cast<std::uint32_t>(seed % 30);
  w.evictPercent = 4 + static_cast<std::uint32_t>(seed % 10);
  w.seed = 0xF00DULL ^ (seed * 0xD1B54A32D192ED03ULL);
  return w;
}

/// Hash every byte-stable artifact of a finished run: the serialized trace
/// text, the run outcome and progress counters, the network traffic
/// counters (the seed-era fields; per-type delivery counters added later
/// are asserted separately, not hashed, so the pins survive additive
/// stats), and the checker verdict.
inline std::uint64_t artifactFingerprint(const trace::Trace& trace,
                                         const sim::RunResult& result,
                                         const net::NetStats& ns,
                                         const verify::CheckReport& report) {
  std::uint64_t h = kFnvOffset;
  // The full trace text: operations, Lamport stamps, serializations,
  // value receipts, NACKs — one changed delivery order changes this.
  std::ostringstream os;
  trace::save(trace, os);
  fnvStr(h, os.str());
  fnvU64(h, static_cast<std::uint64_t>(result.outcome));
  fnvU64(h, result.eventsProcessed);
  fnvU64(h, result.endTime);
  fnvU64(h, result.opsBound);
  fnvU64(h, ns.sent);
  fnvU64(h, ns.delivered);
  // The seed engine's histogram had 16 rows (UpdateX was silently dropped
  // — the bug the per-type conservation test caught); hash exactly those
  // rows so the pins captured from it stay valid.  UpdateX traffic is
  // covered by the aggregate counters hashed above.
  for (std::size_t i = 0; i < 16 && i < ns.sentByType.size(); ++i) {
    fnvU64(h, ns.sentByType[i]);
  }
  fnvStr(h, report.summary());
  for (const auto& v : report.violations) {
    fnvStr(h, v.check);
    fnvStr(h, v.detail);
  }
  return h;
}

/// Execute one fully-verified run and hash every stable artifact of it.
inline std::uint64_t runFingerprint(const SystemConfig& sys,
                                    const std::vector<workload::Program>& progs,
                                    net::Network::Mode mode) {
  trace::Trace trace;
  verify::StreamCheckerSet checkers(proto::verifyConfigFor(sys));
  proto::TeeSink tee{&trace, &checkers};
  sim::System system(sys, tee, mode);
  for (NodeId p = 0; p < sys.numProcessors; ++p) {
    system.setProgram(p, progs[p]);
  }
  const sim::RunResult result = system.run();
  checkers.finish();
  return artifactFingerprint(trace, result, system.network().stats(),
                             checkers.report());
}

/// Fingerprint of sub-run `seed` of a matrix cell.
inline std::uint64_t cellSeedFingerprint(const MatrixCell& cell,
                                         std::uint64_t seed) {
  const SystemConfig sys = matrixConfig(seed);
  const workload::WorkloadConfig w = matrixWorkload(sys, seed);
  return runFingerprint(sys, workload::make(cell.kind, w), cell.mode);
}

/// Fold `seeds` sub-run fingerprints of one cell into a single pin.
inline std::uint64_t cellFingerprint(const MatrixCell& cell,
                                     std::uint64_t seeds) {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t s = 0; s < seeds; ++s) {
    fnvU64(h, cellSeedFingerprint(cell, s));
  }
  return h;
}

/// The matrix: the six seed-era workload families under both timed network
/// modes.  Pinned to an explicit list (NOT 0..kNumKinds) so that appending
/// new families — LeaseChurn arrived with the Tardis backend — cannot
/// silently grow the matrix and invalidate the captured pins.
inline std::vector<MatrixCell> fingerprintMatrix() {
  static constexpr workload::Kind kSeedEraKinds[] = {
      workload::Kind::Uniform,    workload::Kind::Hot,
      workload::Kind::ProdCons,   workload::Kind::Migratory,
      workload::Kind::FalseShare, workload::Kind::ReadMostly,
  };
  std::vector<MatrixCell> cells;
  for (const workload::Kind k : kSeedEraKinds) {
    for (const net::Network::Mode mode :
         {net::Network::Mode::RandomLatency, net::Network::Mode::Fifo}) {
      cells.push_back(MatrixCell{k, mode});
    }
  }
  return cells;
}

/// The PCT companion matrix: the same six families under the
/// randomized-priority schedule.  A separate table on purpose — kGolden's
/// pins predate the Pct mode and must not grow; the Pct pins live in
/// tests/pct_test.cpp and were captured from the mode's first
/// implementation (`sim_throughput --hashes` prints both tables).
inline std::vector<MatrixCell> pctFingerprintMatrix() {
  std::vector<MatrixCell> cells;
  for (const MatrixCell& cell : fingerprintMatrix()) {
    if (cell.mode == net::Network::Mode::RandomLatency) {
      cells.push_back(MatrixCell{cell.kind, net::Network::Mode::Pct});
    }
  }
  return cells;
}

}  // namespace lcdc::testing
