// The calendar queue's one correctness obligation: its pop order is
// *identical* to std::priority_queue<Envelope, ..., Later>'s — earliest
// deliverAt first, sequence number breaking ties (DESIGN.md §10).  These
// tests pin that equivalence against a live priority_queue oracle under
// randomized interleavings (including time jumps past the wheel window,
// which exercise the overflow heap and wheel rollover), plus the edge
// cases a property sweep can miss.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "net/calendar_queue.hpp"

namespace lcdc::net {
namespace {

Envelope env(MsgSeq seq, Tick at) {
  Envelope e;
  e.seq = seq;
  e.dst = 1;
  e.sentAt = 0;
  e.deliverAt = at;
  e.msg.block = static_cast<BlockId>(seq % 1024);
  return e;
}

/// The seed engine's heap ordering: the earliest (deliverAt, seq) on top.
struct Later {
  bool operator()(const Envelope& a, const Envelope& b) const {
    if (a.deliverAt != b.deliverAt) return a.deliverAt > b.deliverAt;
    return a.seq > b.seq;
  }
};
using Oracle = std::priority_queue<Envelope, std::vector<Envelope>, Later>;

TEST(CalendarQueue, EmptyQueueBasics) {
  CalendarQueue q(10);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.nextDeliveryTime(), kNever);
  EXPECT_THROW((void)q.pop(), ProtocolError);
}

TEST(CalendarQueue, PushBeforeCursorIsRejected) {
  CalendarQueue q(10);
  q.push(env(0, 50));
  (void)q.pop();  // cursor is now 50
  EXPECT_THROW(q.push(env(1, 49)), ProtocolError);
  q.push(env(2, 50));  // equal to the cursor is fine
  EXPECT_EQ(q.pop().seq, 2u);
}

TEST(CalendarQueue, SeqBreaksTiesWithinOneTick) {
  CalendarQueue q(10);
  for (MsgSeq s = 0; s < 20; ++s) q.push(env(s, 7));
  for (MsgSeq s = 0; s < 20; ++s) {
    const Envelope e = q.pop();
    EXPECT_EQ(e.seq, s);
    EXPECT_EQ(e.deliverAt, 7u);
  }
  EXPECT_TRUE(q.empty());
}

// A time jump larger than the wheel window parks envelopes in the overflow
// heap; once the cursor catches up, later pushes for the *same* tick land
// on the wheel.  The mixed tie must still pop in seq order (overflow
// first here, because those envelopes have the smaller seqs).
TEST(CalendarQueue, WheelAndOverflowTieBreaksBySeq) {
  CalendarQueue q(4);  // tiny wheel: window is 64 ticks
  const Tick far = 1000;
  q.push(env(0, far));  // beyond the window: overflow
  q.push(env(1, far));
  EXPECT_EQ(q.stats().overflowPushes, 2u);
  q.push(env(2, 990));  // also overflow; pops first, dragging the cursor up
  EXPECT_EQ(q.pop().seq, 2u);
  q.push(env(3, far));  // cursor is 990 now: tick 1000 is on the wheel
  q.push(env(4, far));
  for (MsgSeq s = 0; s <= 1; ++s) EXPECT_EQ(q.pop().seq, s);  // overflow
  for (MsgSeq s = 3; s <= 4; ++s) EXPECT_EQ(q.pop().seq, s);  // wheel
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().overflowPops, 3u);
}

// The wheel covers [cursor, cursor + window); a monotonically advancing
// tick stream wraps it many times.  Exact agreement with the oracle across
// thousands of wraps is the rollover test.
TEST(CalendarQueue, RolloverAcrossManyWheelWraps) {
  CalendarQueue q(8);  // window 64: every 64 ticks of progress is a wrap
  Oracle o;
  Rng rng(0xCA1E);
  Tick now = 0;
  MsgSeq seq = 0;
  for (int step = 0; step < 50'000; ++step) {
    if (o.empty() || rng.chance(1, 2)) {
      const Envelope e = env(seq++, now + rng.uniform(0, 8));
      o.push(e);
      q.push(Envelope(e));
    } else {
      const Envelope want = o.top();
      o.pop();
      const Envelope got = q.pop();
      ASSERT_EQ(got.deliverAt, want.deliverAt);
      ASSERT_EQ(got.seq, want.seq);
      now = got.deliverAt;
    }
  }
}

// Full property sweep: random interleavings of pushes and pops, with
// occasional idle-period jumps well past the wheel window (the retry-timer
// pattern that feeds the overflow heap).  Every pop and every
// nextDeliveryTime must agree with the oracle exactly.
TEST(CalendarQueue, MatchesPriorityQueueOracle) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 0xFEEDull}) {
    CalendarQueue q(40);
    Oracle o;
    Rng rng(seed);
    Tick now = 0;
    MsgSeq seq = 0;
    for (int step = 0; step < 30'000; ++step) {
      if (o.empty() || rng.chance(11, 20)) {
        // ~3% of pushes jump far beyond the window (overflow path); ties
        // are common because latencies draw from a small range.
        const Tick jump = rng.chance(3, 100) ? 700 + rng.uniform(0, 3000)
                                             : rng.uniform(0, 40);
        const Envelope e = env(seq++, now + jump);
        o.push(e);
        q.push(Envelope(e));
      } else {
        ASSERT_EQ(q.nextDeliveryTime(), o.top().deliverAt);
        const Envelope want = o.top();
        o.pop();
        const Envelope got = q.pop();
        ASSERT_EQ(got.deliverAt, want.deliverAt);
        ASSERT_EQ(got.seq, want.seq);
        ASSERT_EQ(got.msg.block, want.msg.block);
        now = got.deliverAt;
      }
      ASSERT_EQ(q.size(), o.size());
    }
    while (!o.empty()) {
      const Envelope want = o.top();
      o.pop();
      const Envelope got = q.pop();
      ASSERT_EQ(got.deliverAt, want.deliverAt);
      ASSERT_EQ(got.seq, want.seq);
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextDeliveryTime(), kNever);
    EXPECT_GT(q.stats().overflowPushes, 0u) << "sweep never hit the overflow";
  }
}

TEST(CalendarQueue, ClearKeepsThePoolAndRewindsTheCursor) {
  CalendarQueue q(10);
  for (MsgSeq s = 0; s < 600; ++s) q.push(env(s, 100 + s / 8));
  const std::uint64_t pool = q.stats().poolNodes;
  EXPECT_GE(pool, 600u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().poolNodes, pool) << "clear() must keep the slabs";
  // The cursor rewound to zero: tick 0 pushes are legal again, and a
  // refill up to the old high-water carves no new slab.
  for (MsgSeq s = 0; s < 600; ++s) q.push(env(s, s / 8));
  EXPECT_EQ(q.stats().poolNodes, pool);
  Tick prev = 0;
  while (!q.empty()) {
    const Tick t = q.pop().deliverAt;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(CalendarQueue, ResetStatsKeepsThePoolHighWater) {
  CalendarQueue q(10);
  for (MsgSeq s = 0; s < 10; ++s) q.push(env(s, 5));
  while (!q.empty()) (void)q.pop();
  const std::uint64_t pool = q.stats().poolNodes;
  q.resetStats();
  EXPECT_EQ(q.stats().pushes, 0u);
  EXPECT_EQ(q.stats().pops, 0u);
  EXPECT_EQ(q.stats().maxDepth, 0u);
  EXPECT_EQ(q.stats().poolNodes, pool);
}

}  // namespace
}  // namespace lcdc::net
