// Scripted reproductions of the paper's concrete scenarios, driven with a
// Manual network so every race fires deterministically:
//
//   * the Section 3.2 two-node/two-block example (Tables 2 and 3),
//   * the Figure 2 Put-Shared deadlock, with and without the Section 2.5
//     detection,
//   * the write-back races of transactions 13, 14a and 14b.
#include <gtest/gtest.h>

#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

namespace lcdc {
namespace {

using net::Envelope;
using proto::MsgType;
using workload::evict;
using workload::load;
using workload::store;

constexpr BlockId kA = 0;
constexpr BlockId kB = 1;

SystemConfig twoNodeConfig() {
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  cfg.seed = 1;
  return cfg;
}

/// Deliver while any message is pending (manual mode, FIFO order) — used
/// when the remaining drain order no longer matters.
void drainAll(sim::System& sys) {
  while (!sys.network().empty()) sys.deliverManual(0);
}

bool deliver(sim::System& sys, MsgType type, NodeId dst) {
  return sys.deliverManualFirst([&](const Envelope& e) {
    return e.msg.type == type && e.dst == dst;
  });
}

const proto::OpRecord* findOp(const trace::Trace& t, NodeId proc, OpKind kind,
                              BlockId block, std::size_t nth = 0) {
  std::size_t seen = 0;
  for (const auto& op : t.operations()) {
    if (op.proc == proc && op.kind == kind && op.block == block) {
      if (seen++ == nth) return &op;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Section 3.2 example (Tables 2 / 3): N1 holds A read-only and B
// read-write; N2 takes A read-write.  N1's load from A is bound before the
// invalidation is answered, so in Lamport time it orders *before* N2's
// store even though N2's store completes later in real time.
// ---------------------------------------------------------------------------
TEST(Scenario, Tables2And3LamportReordering) {
  trace::Trace trace;
  sim::System sys(twoNodeConfig(), trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;

  // Warm-up: N1 acquires A read-only and B read-write.
  sys.setProgram(n1, {{load(kA, 0), store(kB, 0, 0xB1), load(kA, 1)}});
  sys.setProgram(n2, {{store(kA, 0, 0xA2)}});

  sys.kick(n1);
  ASSERT_TRUE(deliver(sys, MsgType::GetS, sys.home(kA)));
  ASSERT_TRUE(deliver(sys, MsgType::DataShared, n1));  // load A#0 binds
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kB)));
  // N2's request goes out but waits in the network.
  sys.kick(n2);
  // N1 completes the store to B and immediately binds the second load of A.
  ASSERT_TRUE(deliver(sys, MsgType::DataExclusive, n1));
  // Now the invalidation sweep for A reaches N1 *after* its load was bound.
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kA)));
  ASSERT_TRUE(deliver(sys, MsgType::Inv, n1));
  drainAll(sys);

  ASSERT_TRUE(sys.allProgramsDone());
  ASSERT_TRUE(sys.quiescent());

  const auto* storeB = findOp(trace, n1, OpKind::Store, kB);
  const auto* loadA = findOp(trace, n1, OpKind::Load, kA, 1);
  const auto* storeA = findOp(trace, n2, OpKind::Store, kA);
  ASSERT_NE(storeB, nullptr);
  ASSERT_NE(loadA, nullptr);
  ASSERT_NE(storeA, nullptr);

  // Table 3's shape: the store to B and the load from A share a global
  // timestamp and are ordered by their local components...
  EXPECT_EQ(storeB->ts.global, loadA->ts.global);
  EXPECT_EQ(storeB->ts.local + 1, loadA->ts.local);
  // ...and N1's load orders before N2's store in Lamport time, returning
  // the pre-store value (the initial 0), which is exactly why the ordering
  // is a sequentially consistent witness.
  EXPECT_LT(loadA->ts, storeA->ts);
  EXPECT_EQ(loadA->value, 0u);

  const auto report =
      verify::checkAll(trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Figure 2: the Put-Shared deadlock and its Section 2.5 resolution.
// ---------------------------------------------------------------------------
struct Figure2Setup {
  trace::Trace trace;
  std::unique_ptr<sim::System> sys;

  explicit Figure2Setup(Mutant mutant) {
    SystemConfig cfg = twoNodeConfig();
    cfg.proto.mutant = mutant;
    sys = std::make_unique<sim::System>(cfg, trace,
                                        net::Network::Mode::Manual);
    const NodeId n1 = 0, n2 = 1;
    // N1: read A, silently evict it, read it again (the re-request).
    sys->setProgram(n1, {{load(kA, 0), evict(kA), load(kA, 0)}});
    // N2: take A read-write.
    sys->setProgram(n2, {{store(kA, 0, 0xA2)}});

    // 1. N1 acquires A read-only, Put-Shareds it, re-requests it.
    sys->kick(n1);
    EXPECT_TRUE(deliver(*sys, MsgType::GetS, sys->home(kA)));
    EXPECT_TRUE(deliver(*sys, MsgType::DataShared, n1));
    // (the evict and the second Get-Shared happen inside the same kick)
    // 2. N2's Get-Exclusive beats N1's re-request to the home: the home
    //    invalidates N1 (stale CACHED entry) and goes Exclusive.
    sys->kick(n2);
    EXPECT_TRUE(deliver(*sys, MsgType::GetX, sys->home(kA)));
    // 3. N1's Get-Shared now finds the directory Exclusive and is forwarded
    //    to N2.
    EXPECT_TRUE(deliver(*sys, MsgType::GetS, sys->home(kA)));
    // 4. The forward reaches N2 before N2 has its reply (buffered), then
    //    the reply arrives: N2 is waiting for N1's inv-ack while N1 waits
    //    for N2's data — Figure 2's cycle.
    EXPECT_TRUE(deliver(*sys, MsgType::FwdGetS, n2));
    EXPECT_TRUE(deliver(*sys, MsgType::DataExclusive, n2));
  }
};

TEST(Scenario, Figure2DeadlockResolved) {
  Figure2Setup fx(Mutant::None);
  sim::System& sys = *fx.sys;
  const NodeId n1 = 0;

  // Detection fired at N2: it bound its store and answered N1 directly,
  // telling it to drop the superseded invalidation.
  EXPECT_EQ(sys.processor(1).cache().stats().deadlocksResolved, 1u);
  ASSERT_TRUE(deliver(sys, MsgType::OwnerData, n1));
  // N1 is up; the stale invalidation arrives last and is dropped silently.
  EXPECT_TRUE(sys.allProgramsDone());
  ASSERT_TRUE(deliver(sys, MsgType::Inv, n1));
  EXPECT_EQ(sys.processor(0).cache().stats().invsDropped, 1u);
  drainAll(sys);
  ASSERT_TRUE(sys.quiescent());

  // N1's second load must see N2's store: N2 bound it before servicing the
  // forward.
  const auto* loadA = findOp(fx.trace, 0, OpKind::Load, kA, 1);
  ASSERT_NE(loadA, nullptr);
  EXPECT_EQ(loadA->value, 0xA2u);

  const auto report = verify::checkAll(fx.trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Scenario, Figure2DeadlocksWithoutDetection) {
  Figure2Setup fx(Mutant::NoDeadlockDetection);
  sim::System& sys = *fx.sys;

  // Without detection, N2 buffers the forward and keeps waiting for N1's
  // ack; N1 buffers the invalidation and keeps waiting for data.  Once the
  // remaining messages (the invalidation) are delivered, nothing can move.
  drainAll(sys);
  EXPECT_TRUE(sys.network().empty());
  EXPECT_FALSE(sys.allProgramsDone());
  EXPECT_FALSE(sys.quiescent());
  EXPECT_EQ(sys.processor(1).cache().stats().deadlocksResolved, 0u);
}

// ---------------------------------------------------------------------------
// Transaction 13: a writeback races a forwarded Get-Shared.
// ---------------------------------------------------------------------------
TEST(Scenario, Transaction13WritebackRacesForwardedGetS) {
  trace::Trace trace;
  sim::System sys(twoNodeConfig(), trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  sys.setProgram(n1, {{store(kA, 0, 0xA1), evict(kA)}});
  sys.setProgram(n2, {{load(kA, 0)}});

  // N1 becomes the owner.
  sys.kick(n1);
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kA)));
  ASSERT_TRUE(deliver(sys, MsgType::DataExclusive, n1));
  // (store bound; the evict issues a Writeback, still in the network)
  // N2's Get-Shared reaches the home first: Busy-Shared + forward to N1.
  sys.kick(n2);
  ASSERT_TRUE(deliver(sys, MsgType::GetS, sys.home(kA)));
  // The writeback arrives at the busy home: the combined transaction 13.
  ASSERT_TRUE(deliver(sys, MsgType::Writeback, sys.home(kA)));
  // The busy ack reaches N1 before the forward: N1 must remember to drop it.
  ASSERT_TRUE(deliver(sys, MsgType::WbBusyAck, n1));
  ASSERT_TRUE(deliver(sys, MsgType::FwdGetS, n1));
  EXPECT_EQ(sys.processor(0).cache().stats().fwdsDropped, 1u);
  drainAll(sys);
  ASSERT_TRUE(sys.allProgramsDone());
  ASSERT_TRUE(sys.quiescent());

  // N2 read the written-back value, served by the home.
  const auto* loadA = findOp(trace, n2, OpKind::Load, kA);
  ASSERT_NE(loadA, nullptr);
  EXPECT_EQ(loadA->value, 0xA1u);

  // The combined transaction is recorded as transaction 13.
  bool saw13 = false;
  for (const auto& rec : trace.serializations()) {
    saw13 |= rec.txn.kind == TxnKind::Wb_BusyShared;
  }
  EXPECT_TRUE(saw13);

  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Variant: the forward reaches N1 while its writeback is outstanding (it is
// buffered), then the busy ack discards it from the buffer.
TEST(Scenario, Transaction13ForwardBufferedThenDiscarded) {
  trace::Trace trace;
  sim::System sys(twoNodeConfig(), trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  sys.setProgram(n1, {{store(kA, 0, 0xA1), evict(kA)}});
  sys.setProgram(n2, {{load(kA, 0)}});

  sys.kick(n1);
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kA)));
  ASSERT_TRUE(deliver(sys, MsgType::DataExclusive, n1));
  sys.kick(n2);
  ASSERT_TRUE(deliver(sys, MsgType::GetS, sys.home(kA)));
  // This time the forward arrives first and is buffered behind the WB...
  ASSERT_TRUE(deliver(sys, MsgType::FwdGetS, n1));
  EXPECT_EQ(sys.processor(0).cache().stats().forwardsBuffered, 1u);
  ASSERT_TRUE(deliver(sys, MsgType::Writeback, sys.home(kA)));
  // ...and the busy ack discards it.
  ASSERT_TRUE(deliver(sys, MsgType::WbBusyAck, n1));
  EXPECT_EQ(sys.processor(0).cache().stats().fwdsDropped, 1u);
  drainAll(sys);
  ASSERT_TRUE(sys.quiescent());

  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Transaction 14a: a writeback races a forwarded Get-Exclusive.
// ---------------------------------------------------------------------------
TEST(Scenario, Transaction14aWritebackRacesForwardedGetX) {
  trace::Trace trace;
  sim::System sys(twoNodeConfig(), trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  sys.setProgram(n1, {{store(kA, 0, 0xA1), evict(kA)}});
  sys.setProgram(n2, {{store(kA, 0, 0xA2), load(kA, 0)}});

  sys.kick(n1);
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kA)));
  ASSERT_TRUE(deliver(sys, MsgType::DataExclusive, n1));
  sys.kick(n2);
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kA)));   // Busy-Exclusive
  ASSERT_TRUE(deliver(sys, MsgType::Writeback, sys.home(kA)));  // 14a
  ASSERT_TRUE(deliver(sys, MsgType::WbBusyAck, n1));
  ASSERT_TRUE(deliver(sys, MsgType::FwdGetX, n1));
  EXPECT_EQ(sys.processor(0).cache().stats().fwdsDropped, 1u);
  // N2 receives the written-back block with ownership from the home.
  ASSERT_TRUE(deliver(sys, MsgType::OwnerData, n2));
  drainAll(sys);
  ASSERT_TRUE(sys.allProgramsDone());
  ASSERT_TRUE(sys.quiescent());

  const auto* loadA = findOp(trace, n2, OpKind::Load, kA);
  ASSERT_NE(loadA, nullptr);
  EXPECT_EQ(loadA->value, 0xA2u);

  bool saw14a = false;
  for (const auto& rec : trace.serializations()) {
    saw14a |= rec.txn.kind == TxnKind::Wb_BusyExclusive;
  }
  EXPECT_TRUE(saw14a);

  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Transaction 14b: the new owner's writeback beats the former owner's
// update message to the home.
// ---------------------------------------------------------------------------
TEST(Scenario, Transaction14bWritebackBeatsUpdate) {
  trace::Trace trace;
  sim::System sys(twoNodeConfig(), trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  sys.setProgram(n1, {{store(kA, 0, 0xA1)}});
  sys.setProgram(n2, {{store(kA, 0, 0xA2), evict(kA)}});

  sys.kick(n1);
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kA)));
  ASSERT_TRUE(deliver(sys, MsgType::DataExclusive, n1));
  sys.kick(n2);
  ASSERT_TRUE(deliver(sys, MsgType::GetX, sys.home(kA)));  // fwd to N1
  ASSERT_TRUE(deliver(sys, MsgType::FwdGetX, n1));
  // N1 sent OwnerData -> N2 and UpdateX -> home; hold the update.
  ASSERT_TRUE(deliver(sys, MsgType::OwnerData, n2));
  // N2 is now the owner, binds its store, and its evict writes back —
  // beating N1's update to the home.
  ASSERT_TRUE(deliver(sys, MsgType::Writeback, sys.home(kA)));
  ASSERT_TRUE(deliver(sys, MsgType::WbAck, n2));
  // The straggling update finally lands: Busy-Idle -> Idle.
  ASSERT_TRUE(deliver(sys, MsgType::UpdateX, sys.home(kA)));
  drainAll(sys);
  ASSERT_TRUE(sys.allProgramsDone());
  ASSERT_TRUE(sys.quiescent());

  bool saw14b = false;
  for (const auto& rec : trace.serializations()) {
    saw14b |= rec.txn.kind == TxnKind::Wb_BusyExclusiveSelf;
  }
  EXPECT_TRUE(saw14b);
  // The home holds N2's value in memory.
  const auto& entry = sys.directory(0).entry(kA);
  EXPECT_EQ(entry.core.state, DirState::Idle);
  EXPECT_EQ(entry.mem[0], 0xA2u);

  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace lcdc
