// Round-trip tests for trace serialization: a saved-and-reloaded trace
// must be record-for-record identical, verify identically, and reject
// malformed input loudly.
#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.hpp"
#include "testutil.hpp"
#include "trace/serialize.hpp"

namespace lcdc::trace {
namespace {

Trace makeRealTrace() {
  SystemConfig cfg;
  cfg.numProcessors = 4;
  cfg.numDirectories = 2;
  cfg.numBlocks = 8;
  cfg.cacheCapacity = 3;
  cfg.seed = 77;
  auto w = test::workloadFor(cfg, 300, 8);
  w.storePercent = 45;
  w.evictPercent = 10;
  const auto programs = workload::hotBlock(w, 80, 3);
  Trace trace;
  sim::System sys(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    sys.setProgram(p, programs[p]);
  }
  EXPECT_TRUE(sys.run().ok());
  return trace;
}

TEST(Serialize, RoundTripIsExact) {
  const Trace original = makeRealTrace();
  std::stringstream buffer;
  save(original, buffer);
  const Trace reloaded = load(buffer);

  ASSERT_EQ(reloaded.serializations().size(),
            original.serializations().size());
  ASSERT_EQ(reloaded.stamps().size(), original.stamps().size());
  ASSERT_EQ(reloaded.values().size(), original.values().size());
  ASSERT_EQ(reloaded.operations().size(), original.operations().size());
  ASSERT_EQ(reloaded.nacks().size(), original.nacks().size());
  ASSERT_EQ(reloaded.putShareds().size(), original.putShareds().size());
  ASSERT_EQ(reloaded.deadlockResolutions().size(),
            original.deadlockResolutions().size());

  for (std::size_t i = 0; i < original.stamps().size(); ++i) {
    const StampRecord& a = original.stamps()[i];
    const StampRecord& b = reloaded.stamps()[i];
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.txn, b.txn);
    EXPECT_EQ(a.serial, b.serial);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.role, b.role);
    EXPECT_EQ(a.order, b.order);
  }
  for (std::size_t i = 0; i < original.operations().size(); ++i) {
    const proto::OpRecord& a = original.operations()[i];
    const proto::OpRecord& b = reloaded.operations()[i];
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.boundTxn, b.boundTxn);
    EXPECT_EQ(a.order, b.order);
  }
  // The converted transaction kinds survive (they are folded into the
  // serialization records).
  for (const auto& rec : original.serializations()) {
    const proto::TxnInfo* t = reloaded.findTxn(rec.txn.id);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->kind, rec.txn.kind);
  }
}

TEST(Serialize, ReloadedTraceVerifiesIdentically) {
  const Trace original = makeRealTrace();
  std::stringstream buffer;
  save(original, buffer);
  const Trace reloaded = load(buffer);

  const verify::VerifyConfig cfg{4};
  const auto a = verify::checkAll(original, cfg);
  const auto b = verify::checkAll(reloaded, cfg);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(a.opsChecked, b.opsChecked);
  EXPECT_EQ(a.txnsChecked, b.txnsChecked);
  EXPECT_EQ(a.epochsBuilt, b.epochsBuilt);
}

TEST(Serialize, SaveLoadSaveIsStable) {
  const Trace original = makeRealTrace();
  std::stringstream first;
  save(original, first);
  const std::string once = first.str();
  std::stringstream in(once);
  const Trace reloaded = load(in);
  std::stringstream second;
  save(reloaded, second);
  EXPECT_EQ(once, second.str());
}

TEST(Serialize, EmptyTraceRoundTrips) {
  Trace empty;
  std::stringstream buffer;
  save(empty, buffer);
  const Trace reloaded = load(buffer);
  EXPECT_TRUE(reloaded.serializations().empty());
  EXPECT_TRUE(reloaded.operations().empty());
}

TEST(Serialize, CommentsAndBlankLinesAreIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "H 3\n"
      "P 1 2 1\n"
      "# trailing comment\n"
      "N 0 2 4 2\n");
  const Trace t = load(in);
  ASSERT_EQ(t.putShareds().size(), 1u);
  EXPECT_EQ(t.putShareds()[0].node, 1u);
  ASSERT_EQ(t.nacks().size(), 1u);
  EXPECT_EQ(t.nacks()[0].kind, NackKind::GetS_Busy);
}

TEST(Serialize, MalformedInputIsRejected) {
  std::stringstream bad1("Z 1 2 3\n");
  EXPECT_THROW((void)load(bad1), SimError);
  std::stringstream bad2("S 1 2\n");  // truncated record
  EXPECT_THROW((void)load(bad2), SimError);
}

TEST(Serialize, FileHelpersWork) {
  const Trace original = makeRealTrace();
  const std::string path = testing::TempDir() + "/lcdc_trace_test.txt";
  saveFile(original, path);
  const Trace reloaded = loadFile(path);
  EXPECT_EQ(reloaded.operations().size(), original.operations().size());
  EXPECT_THROW((void)loadFile("/nonexistent/path/trace.txt"), SimError);
}

}  // namespace
}  // namespace lcdc::trace
