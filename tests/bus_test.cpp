// Tests for the snooping-bus protocol (the companion-result extension):
// the same verify::checkAll suite — Lemmas 1-3, Claims 2-3, the Main
// Theorem — must hold on bus executions, across workloads and seeds.
#include <gtest/gtest.h>

#include "bus/bus_system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

namespace lcdc {
namespace {

struct BusOutput {
  bus::BusRunResult result;
  verify::CheckReport report;
};

BusOutput runBus(const bus::BusConfig& cfg,
                 const std::vector<workload::Program>& programs,
                 trace::Trace* traceOut = nullptr) {
  trace::Trace local;
  trace::Trace& trace = traceOut ? *traceOut : local;
  bus::BusSystem sys(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors && p < programs.size(); ++p) {
    sys.setProgram(p, programs[p]);
  }
  BusOutput out;
  out.result = sys.run();
  out.report =
      verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
  return out;
}

workload::WorkloadConfig wl(const bus::BusConfig& cfg, std::uint64_t ops,
                            std::uint64_t seed) {
  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.wordsPerBlock;
  w.opsPerProcessor = ops;
  w.seed = seed;
  return w;
}

TEST(Bus, SingleWriterSingleReader) {
  bus::BusConfig cfg;
  cfg.numProcessors = 2;
  cfg.numBlocks = 1;
  trace::Trace trace;
  bus::BusSystem sys(cfg, trace);
  sys.setProgram(0, {{workload::store(0, 0, 0xAB)}});
  sys.setProgram(1, {{workload::load(0, 0)}});
  const auto result = sys.run();
  ASSERT_TRUE(result.ok()) << toString(result.outcome);
  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(trace.operations().size(), 2u);
}

TEST(Bus, OwnershipMigratesWithValues) {
  bus::BusConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 2;
  cfg.seed = 9;
  auto programs = workload::migratory(wl(cfg, 60, 3));
  const BusOutput out = runBus(cfg, programs);
  ASSERT_TRUE(out.result.ok());
  EXPECT_TRUE(out.report.ok()) << out.report.summary();
}

struct BusSweepParam {
  NodeId procs;
  BlockId blocks;
  std::uint32_t capacity;
  bus::Tick snoopDelay;
  std::uint64_t seed;
};

class BusSweep : public testing::TestWithParam<BusSweepParam> {};

TEST_P(BusSweep, AllPropertiesHold) {
  const BusSweepParam& p = GetParam();
  bus::BusConfig cfg;
  cfg.numProcessors = p.procs;
  cfg.numBlocks = p.blocks;
  cfg.cacheCapacity = p.capacity;
  cfg.snoopDelayMax = p.snoopDelay;
  cfg.seed = p.seed;
  auto w = wl(cfg, 500, p.seed * 97 + 1);
  w.storePercent = 45;
  w.evictPercent = 10;
  const auto programs =
      workload::hotBlock(w, 80, std::min<BlockId>(2, cfg.numBlocks));
  const BusOutput out = runBus(cfg, programs);
  ASSERT_TRUE(out.result.ok()) << toString(out.result.outcome);
  EXPECT_TRUE(out.report.ok()) << out.report.summary();
  EXPECT_GT(out.report.opsChecked, 0u);
}

constexpr BusSweepParam kBusSweep[] = {
    {2, 1, 0, 1, 1},   {2, 2, 0, 8, 2},   {4, 4, 0, 16, 3},
    {4, 2, 2, 16, 4},  {8, 8, 3, 16, 5},  {8, 4, 2, 32, 6},
    {16, 8, 4, 24, 7}, {3, 1, 0, 64, 8},  {6, 2, 2, 48, 9},
    {4, 4, 0, 1, 10},
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, BusSweep, testing::ValuesIn(kBusSweep),
    [](const testing::TestParamInfo<BusSweepParam>& info) {
      return "p" + std::to_string(info.param.procs) + "b" +
             std::to_string(info.param.blocks) + "c" +
             std::to_string(info.param.capacity) + "d" +
             std::to_string(info.param.snoopDelay) + "s" +
             std::to_string(info.param.seed);
    });

TEST(Bus, UpgradeRaceConvertsToBusRdX) {
  // Many sharers upgrading the same block concurrently: losers must be
  // converted to full read-exclusive by the arbiter and still finish.
  bus::BusConfig cfg;
  cfg.numProcessors = 6;
  cfg.numBlocks = 1;
  cfg.seed = 4;
  trace::Trace trace;
  bus::BusSystem sys(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    workload::Program prog;
    for (int i = 0; i < 20; ++i) {
      prog.steps.push_back(workload::load(0, 0));
      prog.steps.push_back(
          workload::store(0, 0, workload::makeStoreValue(p, i)));
    }
    sys.setProgram(p, std::move(prog));
  }
  const auto result = sys.run();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.upgradeConversions, 0u);
  const auto report = verify::checkAll(trace, verify::VerifyConfig{6});
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Bus, SilentEvictionNeedsNoDeadlockMachinery) {
  // The directory protocol's Figure 2 pattern — read, silently evict,
  // re-read while a writer races — is harmless on a bus: invalidations are
  // never acknowledged, so there is nothing to deadlock on.
  bus::BusConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 1;
  cfg.seed = 11;
  trace::Trace trace;
  bus::BusSystem sys(cfg, trace);
  for (NodeId p = 0; p < 2; ++p) {
    workload::Program prog;
    for (int i = 0; i < 25; ++i) {
      prog.steps.push_back(workload::load(0, 0));
      prog.steps.push_back(workload::evict(0));
    }
    sys.setProgram(p, std::move(prog));
  }
  workload::Program writer;
  for (int i = 0; i < 25; ++i) {
    writer.steps.push_back(workload::store(0, 0, workload::makeStoreValue(2, i)));
    writer.steps.push_back(workload::evict(0));
  }
  sys.setProgram(2, std::move(writer));
  const auto result = sys.run();
  ASSERT_TRUE(result.ok()) << toString(result.outcome);
  EXPECT_GT(sys.silentEvictions(), 0u);
  const auto report = verify::checkAll(trace, verify::VerifyConfig{3});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// The bus implementation's hard paths — stale write-back aborts, memory
// responses parked behind in-flight write-backs/flushes, and head-of-line
// snoop-queue blocking — must all actually fire under contention, with
// every run verifying.
TEST(Bus, HardPathsAreExercisedAndStayCorrect) {
  bus::BusRunResult totals;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    bus::BusConfig cfg;
    cfg.numProcessors = 6;
    cfg.numBlocks = 2;
    cfg.cacheCapacity = 1;  // constant churn: write-backs everywhere
    cfg.snoopDelayMax = 48;
    cfg.seed = seed;
    auto w = wl(cfg, 400, seed * 3 + 1);
    w.storePercent = 55;
    w.evictPercent = 15;
    const auto programs = workload::hotBlock(w, 90, 2);
    trace::Trace trace;
    bus::BusSystem sys(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      sys.setProgram(p, programs[p]);
    }
    const bus::BusRunResult r = sys.run();
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << toString(r.outcome);
    const auto report = verify::checkAll(trace, verify::VerifyConfig{6});
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": " << report.summary();
    totals.writebackAborts += r.writebackAborts;
    totals.parkedResponses += r.parkedResponses;
    totals.headOfLineBlocks += r.headOfLineBlocks;
    totals.upgradeConversions += r.upgradeConversions;
  }
  EXPECT_GT(totals.writebackAborts, 0u);
  EXPECT_GT(totals.parkedResponses, 0u);
  EXPECT_GT(totals.headOfLineBlocks, 0u);
  EXPECT_GT(totals.upgradeConversions, 0u);
}

TEST(Bus, FinalMemoryMatchesLamportReplay) {
  bus::BusConfig cfg;
  cfg.numProcessors = 4;
  cfg.numBlocks = 4;
  cfg.seed = 13;
  auto w = wl(cfg, 300, 5);
  w.storePercent = 50;
  w.evictPercent = 15;
  const auto programs = workload::uniformRandom(w);
  trace::Trace trace;
  bus::BusSystem sys(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    sys.setProgram(p, programs[p]);
  }
  ASSERT_TRUE(sys.run().ok());
  ASSERT_TRUE(verify::checkAll(trace, verify::VerifyConfig{4}).ok());

  std::vector<const proto::OpRecord*> ops;
  for (const auto& op : trace.operations()) ops.push_back(&op);
  std::sort(ops.begin(), ops.end(),
            [](const proto::OpRecord* a, const proto::OpRecord* b) {
              return a->ts < b->ts;
            });
  std::map<std::pair<BlockId, WordIdx>, Word> last;
  for (const auto* op : ops) {
    if (op->kind == OpKind::Store) last[{op->block, op->word}] = op->value;
  }
  for (BlockId b = 0; b < cfg.numBlocks; ++b) {
    // Ground truth: the Modified owner's copy if one exists, else memory.
    const BlockValue* truth = &sys.memoryImage(b);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      if (sys.lineState(p, b) == bus::MsiState::Modified) {
        // Owner data is internal; skip blocks still owned (memory stale by
        // design).  We only check memory-resident blocks.
        truth = nullptr;
      }
    }
    if (truth == nullptr) continue;
    for (WordIdx word = 0; word < cfg.wordsPerBlock; ++word) {
      const auto it = last.find({b, word});
      const Word expected = it == last.end() ? 0 : it->second;
      EXPECT_EQ((*truth)[word], expected) << "block " << b << " word " << word;
    }
  }
}

}  // namespace
}  // namespace lcdc
