// Unit tests for the interconnect: Section 2.1's two guarantees (reliable,
// eventual delivery; no ordering) and the three delivery modes.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "net/network.hpp"

namespace lcdc::net {
namespace {

proto::Message msg(proto::MsgType type, BlockId block) {
  proto::Message m;
  m.type = type;
  m.block = block;
  return m;
}

TEST(Network, DeliversEverythingExactlyOnce) {
  Network net(Network::Mode::RandomLatency, Rng(1), 1, 20);
  for (BlockId b = 0; b < 100; ++b) {
    net.send(0, 1, 0, msg(proto::MsgType::GetS, b));
  }
  EXPECT_EQ(net.inFlight(), 100u);
  std::set<BlockId> seen;
  while (!net.empty()) {
    const Envelope env = net.popNext();
    EXPECT_TRUE(seen.insert(env.msg.block).second) << "duplicate delivery";
    EXPECT_EQ(env.dst, 1u);
    EXPECT_EQ(env.msg.src, 0u);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(net.stats().sent, 100u);
  EXPECT_EQ(net.stats().delivered, 100u);
}

TEST(Network, RandomLatencyReordersMessages) {
  Network net(Network::Mode::RandomLatency, Rng(2), 1, 50);
  for (BlockId b = 0; b < 50; ++b) {
    net.send(0, 1, 0, msg(proto::MsgType::GetS, b));
  }
  bool reordered = false;
  BlockId prev = 0;
  bool first = true;
  while (!net.empty()) {
    const Envelope env = net.popNext();
    if (!first && env.msg.block < prev) reordered = true;
    prev = env.msg.block;
    first = false;
  }
  EXPECT_TRUE(reordered) << "random-latency network never reordered";
}

TEST(Network, DeliveryNeverPrecedesSendPlusMinLatency) {
  Network net(Network::Mode::RandomLatency, Rng(3), 5, 9);
  net.send(0, 1, 100, msg(proto::MsgType::GetS, 0));
  const Envelope env = net.popNext();
  EXPECT_GE(env.deliverAt, 105u);
  EXPECT_LE(env.deliverAt, 109u);
}

TEST(Network, FifoPreservesOrder) {
  Network net(Network::Mode::Fifo, Rng(4), 3, 3);
  for (BlockId b = 0; b < 20; ++b) {
    net.send(0, 1, b, msg(proto::MsgType::GetS, b));
  }
  for (BlockId b = 0; b < 20; ++b) {
    EXPECT_EQ(net.popNext().msg.block, b);
  }
}

TEST(Network, NextDeliveryTimeTracksEarliest) {
  Network net(Network::Mode::Fifo, Rng(5), 2, 2);
  EXPECT_EQ(net.nextDeliveryTime(), kNever);
  net.send(0, 1, 10, msg(proto::MsgType::GetS, 0));
  net.send(0, 1, 4, msg(proto::MsgType::GetS, 1));
  EXPECT_EQ(net.nextDeliveryTime(), 6u);
}

TEST(Network, ManualModePicksArbitraryOrder) {
  Network net(Network::Mode::Manual, Rng(6), 1, 1);
  net.send(0, 1, 0, msg(proto::MsgType::GetS, 10));
  net.send(0, 2, 0, msg(proto::MsgType::GetX, 20));
  net.send(1, 2, 0, msg(proto::MsgType::Inv, 30));
  ASSERT_EQ(net.pending().size(), 3u);

  const Envelope second = net.deliverIndex(1);
  EXPECT_EQ(second.msg.block, 20u);
  const auto inv = net.deliverFirst(
      [](const Envelope& e) { return e.msg.type == proto::MsgType::Inv; });
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->msg.block, 30u);
  EXPECT_EQ(net.pending().size(), 1u);
  const Envelope last = net.deliverSeq(net.pending().front().seq);
  EXPECT_EQ(last.msg.block, 10u);
  EXPECT_TRUE(net.empty());
}

// deliverSeq locates the envelope by binary search over the seq-sorted
// pending deque.  Pin it against the obvious oracle — a linear scan plus
// deliverIndex on a twin network — through a long randomized mix of sends
// and deliveries: every delivered envelope and the entire remaining
// pending sequence must match at each step (the identical-trace
// guarantee MC replay relies on).
TEST(Network, DeliverSeqMatchesLinearScanOracle) {
  Network fast(Network::Mode::Manual, Rng(9), 1, 1);
  Network oracle(Network::Mode::Manual, Rng(9), 1, 1);
  Rng rng(0xD5);
  std::uint32_t sent = 0;
  for (int step = 0; step < 2000; ++step) {
    if (fast.pending().empty() || rng.chance(1, 2)) {
      const BlockId b = sent++;
      const proto::Message m = msg(proto::MsgType::GetS, b);
      (void)fast.send(0, 1, 0, m);
      (void)oracle.send(0, 1, 0, m);
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform(0, fast.pending().size() - 1));
      const MsgSeq seq = fast.pending()[pick].seq;
      const Envelope got = fast.deliverSeq(seq);
      std::size_t idx = oracle.pending().size();
      for (std::size_t i = 0; i < oracle.pending().size(); ++i) {
        if (oracle.pending()[i].seq == seq) {
          idx = i;
          break;
        }
      }
      ASSERT_LT(idx, oracle.pending().size()) << "oracle lost seq " << seq;
      const Envelope want = oracle.deliverIndex(idx);
      ASSERT_EQ(got.seq, want.seq);
      ASSERT_EQ(got.msg.block, want.msg.block);
      ASSERT_EQ(fast.pending().size(), oracle.pending().size());
      for (std::size_t i = 0; i < fast.pending().size(); ++i) {
        ASSERT_EQ(fast.pending()[i].seq, oracle.pending()[i].seq);
      }
    }
  }
  EXPECT_THROW((void)fast.deliverSeq(~MsgSeq{0}), ProtocolError);
}

TEST(Network, ModeMisuseIsRejected) {
  Network manual(Network::Mode::Manual, Rng(7), 1, 1);
  EXPECT_THROW((void)manual.nextDeliveryTime(), ProtocolError);
  Network timed(Network::Mode::RandomLatency, Rng(8), 1, 1);
  EXPECT_THROW((void)timed.pending(), ProtocolError);
  EXPECT_THROW((void)timed.popNext(), ProtocolError);
}

TEST(Network, LatencyBoundsValidated) {
  EXPECT_THROW(Network(Network::Mode::Fifo, Rng(1), 5, 2), ProtocolError);
  EXPECT_THROW(Network(Network::Mode::Fifo, Rng(1), 0, 2), ProtocolError);
}

}  // namespace
}  // namespace lcdc::net
