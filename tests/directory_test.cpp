// Unit tests for the directory controller: every Section 2.3 case driven
// message-by-message, including the Appendix-B impossibilities.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "proto/directory.hpp"
#include "trace/trace.hpp"

namespace lcdc::proto {
namespace {

constexpr NodeId kHome = 10;
constexpr BlockId kBlk = 0;

class DirectoryTest : public testing::Test {
 protected:
  DirectoryTest() : dir(kHome, ProtoConfig{}, trace, txns) {
    dir.addBlock(kBlk, BlockValue{1, 2, 3, 4});
  }

  Message req(MsgType type, NodeId src, BlockValue data = {}) {
    Message m;
    m.type = type;
    m.block = kBlk;
    m.src = src;
    m.requester = src;
    m.data = std::move(data);
    if (type == MsgType::Writeback) {
      m.stamps = {TsStamp{src, 100}};  // the owner's pre-assigned stamp
    }
    return m;
  }

  const Message& only(const Outbox& out, std::size_t expected = 1) {
    EXPECT_EQ(out.msgs.size(), expected);
    return out.msgs.front().msg;
  }

  trace::Trace trace;
  TxnCounter txns;
  DirectoryController dir;
  Outbox out;
};

TEST_F(DirectoryTest, GetSFromIdleGoesShared) {
  dir.handle(req(MsgType::GetS, 1), out);
  const DirEntry& e = dir.entry(kBlk);
  EXPECT_EQ(e.core.state, DirState::Shared);
  EXPECT_EQ(e.core.cached, (std::vector<NodeId>{1}));
  const Message& reply = only(out);
  EXPECT_EQ(reply.type, MsgType::DataShared);
  EXPECT_EQ(out.msgs.front().dst, 1u);
  EXPECT_EQ(reply.data, (BlockValue{1, 2, 3, 4}));
  ASSERT_EQ(reply.stamps.size(), 1u);
  EXPECT_EQ(reply.stamps[0].node, kHome);
  EXPECT_EQ(reply.stamps[0].ts, 1u);  // first tick of the entry clock
}

TEST_F(DirectoryTest, GetSFromSharedAccumulatesSharers) {
  dir.handle(req(MsgType::GetS, 1), out);
  out.clear();
  dir.handle(req(MsgType::GetS, 3), out);
  dir.handle(req(MsgType::GetS, 2), out);
  EXPECT_EQ(dir.entry(kBlk).core.cached, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(dir.entry(kBlk).core.state, DirState::Shared);
}

TEST_F(DirectoryTest, GetSIsIdempotentPerSharer) {
  dir.handle(req(MsgType::GetS, 1), out);
  dir.handle(req(MsgType::GetS, 1), out);  // Put-Shared then re-request
  EXPECT_EQ(dir.entry(kBlk).core.cached, (std::vector<NodeId>{1}));
}

TEST_F(DirectoryTest, GetXFromIdleGoesExclusiveNoInvalidations) {
  dir.handle(req(MsgType::GetX, 2), out);
  const DirEntry& e = dir.entry(kBlk);
  EXPECT_EQ(e.core.state, DirState::Exclusive);
  EXPECT_EQ(e.core.cached, (std::vector<NodeId>{2}));
  const Message& reply = only(out);
  EXPECT_EQ(reply.type, MsgType::DataExclusive);
  EXPECT_TRUE(reply.invTargets.empty());
}

TEST_F(DirectoryTest, GetXFromSharedInvalidatesEverySharerButRequester) {
  dir.handle(req(MsgType::GetS, 1), out);
  dir.handle(req(MsgType::GetS, 2), out);
  dir.handle(req(MsgType::GetS, 3), out);
  out.clear();
  dir.handle(req(MsgType::GetX, 2), out);
  // Two invalidations + one data reply.
  ASSERT_EQ(out.msgs.size(), 3u);
  std::vector<NodeId> invDsts;
  const Message* reply = nullptr;
  for (const auto& e : out.msgs) {
    if (e.msg.type == MsgType::Inv) {
      invDsts.push_back(e.dst);
      EXPECT_EQ(e.msg.requester, 2u);
    } else {
      EXPECT_EQ(e.msg.type, MsgType::DataExclusive);
      reply = &e.msg;
    }
  }
  std::sort(invDsts.begin(), invDsts.end());
  EXPECT_EQ(invDsts, (std::vector<NodeId>{1, 3}));
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->invTargets.size(), 2u);
  EXPECT_EQ(dir.entry(kBlk).core.state, DirState::Exclusive);
  EXPECT_EQ(dir.entry(kBlk).core.cached, (std::vector<NodeId>{2}));
}

TEST_F(DirectoryTest, GetSFromExclusiveForwardsAndGoesBusy) {
  dir.handle(req(MsgType::GetX, 1), out);
  out.clear();
  dir.handle(req(MsgType::GetS, 2), out);
  const DirEntry& e = dir.entry(kBlk);
  EXPECT_EQ(e.core.state, DirState::BusyShared);
  EXPECT_EQ(e.core.busyRequester, 2u);
  EXPECT_EQ(e.core.cached, (std::vector<NodeId>{2}));  // owner removed
  const Message& fwd = only(out);
  EXPECT_EQ(fwd.type, MsgType::FwdGetS);
  EXPECT_EQ(out.msgs.front().dst, 1u);  // to the owner
  EXPECT_EQ(fwd.requester, 2u);
}

TEST_F(DirectoryTest, BusyStatesNackEverything) {
  dir.handle(req(MsgType::GetX, 1), out);
  dir.handle(req(MsgType::GetS, 2), out);  // -> Busy-Shared
  out.clear();

  dir.handle(req(MsgType::GetS, 3), out);  // transaction 4
  EXPECT_EQ(only(out).type, MsgType::Nack);
  EXPECT_EQ(out.msgs.front().msg.nackKind, NackKind::GetS_Busy);
  out.clear();
  dir.handle(req(MsgType::GetX, 3), out);  // transaction 8
  EXPECT_EQ(only(out).nackKind, NackKind::GetX_Busy);
  out.clear();
  dir.handle(req(MsgType::Upgrade, 3), out);  // transaction 11
  EXPECT_EQ(only(out).nackKind, NackKind::Upg_Busy);
}

TEST_F(DirectoryTest, UpdateSCompletesTransaction3) {
  dir.handle(req(MsgType::GetX, 1), out);
  dir.handle(req(MsgType::GetS, 2), out);
  out.clear();
  Message upd = req(MsgType::UpdateS, 1, BlockValue{9, 9, 9, 9});
  upd.stamps = {TsStamp{1, 42}};
  dir.handle(upd, out);
  const DirEntry& e = dir.entry(kBlk);
  EXPECT_EQ(e.core.state, DirState::Shared);
  EXPECT_EQ(e.core.cached, (std::vector<NodeId>{1, 2}));  // owner re-added
  EXPECT_EQ(e.mem, (BlockValue{9, 9, 9, 9}));
  EXPECT_TRUE(out.msgs.empty());
  // The entry clock absorbed the owner's stamp (Claim 3(b) chain).
  EXPECT_GE(e.clock, 42u);
}

TEST_F(DirectoryTest, UpgradeFromSharedSkipsData) {
  dir.handle(req(MsgType::GetS, 1), out);
  dir.handle(req(MsgType::GetS, 2), out);
  out.clear();
  dir.handle(req(MsgType::Upgrade, 1), out);
  ASSERT_EQ(out.msgs.size(), 2u);  // one Inv + the UpgradeAck
  const Message* ack = nullptr;
  for (const auto& e : out.msgs) {
    if (e.msg.type == MsgType::UpgradeAck) ack = &e.msg;
  }
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(ack->data.empty());  // "does not need to send the block"
  EXPECT_EQ(ack->invTargets, (std::vector<NodeId>{2}));
  EXPECT_EQ(dir.entry(kBlk).core.state, DirState::Exclusive);
}

TEST_F(DirectoryTest, UpgradeAtExclusiveIsNackedToForceGetX) {
  dir.handle(req(MsgType::GetS, 1), out);
  dir.handle(req(MsgType::GetS, 2), out);
  dir.handle(req(MsgType::Upgrade, 2), out);  // 2 wins
  out.clear();
  dir.handle(req(MsgType::Upgrade, 1), out);  // 1 lost the race: case 10
  EXPECT_EQ(only(out).nackKind, NackKind::Upg_Exclusive);
  EXPECT_EQ(dir.entry(kBlk).core.state, DirState::Exclusive);
}

TEST_F(DirectoryTest, WritebackFromExclusiveGoesIdle) {
  dir.handle(req(MsgType::GetX, 1), out);
  out.clear();
  dir.handle(req(MsgType::Writeback, 1, BlockValue{7, 7, 7, 7}), out);
  const DirEntry& e = dir.entry(kBlk);
  EXPECT_EQ(e.core.state, DirState::Idle);
  EXPECT_TRUE(e.core.cached.empty());
  EXPECT_EQ(e.mem, (BlockValue{7, 7, 7, 7}));
  EXPECT_EQ(only(out).type, MsgType::WbAck);
}

TEST_F(DirectoryTest, Transaction13CombinesWritebackWithPendingGetS) {
  dir.handle(req(MsgType::GetX, 1), out);
  dir.handle(req(MsgType::GetS, 2), out);  // Busy-Shared, fwd in flight
  out.clear();
  dir.handle(req(MsgType::Writeback, 1, BlockValue{5, 5, 5, 5}), out);
  const DirEntry& e = dir.entry(kBlk);
  EXPECT_EQ(e.core.state, DirState::Shared);
  EXPECT_EQ(e.core.cached, (std::vector<NodeId>{2}));  // owner NOT re-added
  EXPECT_EQ(e.mem, (BlockValue{5, 5, 5, 5}));
  ASSERT_EQ(out.msgs.size(), 2u);
  const Message* data = nullptr;
  const Message* busyAck = nullptr;
  for (const auto& entry : out.msgs) {
    if (entry.msg.type == MsgType::DataShared) {
      EXPECT_EQ(entry.dst, 2u);
      data = &entry.msg;
    } else if (entry.msg.type == MsgType::WbBusyAck) {
      EXPECT_EQ(entry.dst, 1u);
      busyAck = &entry.msg;
    }
  }
  ASSERT_NE(data, nullptr);
  ASSERT_NE(busyAck, nullptr);
  EXPECT_EQ(data->data, (BlockValue{5, 5, 5, 5}));
  // The converted transaction keeps one id for both halves.
  EXPECT_EQ(data->txn, busyAck->txn);
  const proto::TxnInfo* txn = trace.findTxn(data->txn);
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(txn->kind, TxnKind::Wb_BusyShared);
}

TEST_F(DirectoryTest, Transaction14bAcceptsWritebackFromBusyRequester) {
  dir.handle(req(MsgType::GetX, 1), out);
  dir.handle(req(MsgType::GetX, 2), out);  // Busy-Exclusive, fwd -> 1
  out.clear();
  // Node 2 (the busy requester) already got the block from node 1 and now
  // writes it back before node 1's update arrives.
  dir.handle(req(MsgType::Writeback, 2, BlockValue{6, 6, 6, 6}), out);
  EXPECT_EQ(dir.entry(kBlk).core.state, DirState::BusyIdle);
  EXPECT_EQ(only(out).type, MsgType::WbAck);
  out.clear();
  dir.handle(req(MsgType::UpdateX, 1), out);
  EXPECT_EQ(dir.entry(kBlk).core.state, DirState::Idle);
  EXPECT_TRUE(out.msgs.empty());
}

TEST_F(DirectoryTest, AppendixBImpossibilitiesThrow) {
  // Upgrade at Idle.
  EXPECT_THROW(dir.handle(req(MsgType::Upgrade, 1), out), ProtocolError);
  // Writeback at Idle.
  EXPECT_THROW(
      dir.handle(req(MsgType::Writeback, 1, BlockValue{0, 0, 0, 0}), out),
      ProtocolError);
  // Writeback at Shared.
  dir.handle(req(MsgType::GetS, 1), out);
  EXPECT_THROW(
      dir.handle(req(MsgType::Writeback, 1, BlockValue{0, 0, 0, 0}), out),
      ProtocolError);
}

TEST_F(DirectoryTest, ForeignBlockRejected) {
  Message m = req(MsgType::GetS, 1);
  m.block = 999;
  EXPECT_THROW(dir.handle(m, out), ProtocolError);
}

TEST_F(DirectoryTest, StatsCountTransactionsAndNacks) {
  dir.handle(req(MsgType::GetS, 1), out);
  dir.handle(req(MsgType::GetX, 2), out);  // Shared -> Exclusive (txn 6)
  dir.handle(req(MsgType::GetS, 3), out);  // Exclusive -> Busy (txn 3)
  dir.handle(req(MsgType::GetS, 4), out);  // NACK (txn 4)
  const DirStats& s = dir.stats();
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.txnByKind.at(static_cast<std::uint8_t>(TxnKind::GetS_Idle)), 1u);
  EXPECT_EQ(s.txnByKind.at(static_cast<std::uint8_t>(TxnKind::GetX_Shared)),
            1u);
  EXPECT_EQ(
      s.txnByKind.at(static_cast<std::uint8_t>(TxnKind::GetS_Exclusive)), 1u);
  EXPECT_EQ(s.nackByKind.at(static_cast<std::uint8_t>(NackKind::GetS_Busy)),
            1u);
}

TEST_F(DirectoryTest, QuiescentTracksBusyPeriods) {
  EXPECT_TRUE(dir.quiescent());
  dir.handle(req(MsgType::GetX, 1), out);
  EXPECT_TRUE(dir.quiescent());
  dir.handle(req(MsgType::GetS, 2), out);
  EXPECT_FALSE(dir.quiescent());  // Busy-Shared
  Message upd = req(MsgType::UpdateS, 1, BlockValue{0, 0, 0, 0});
  dir.handle(upd, out);
  EXPECT_TRUE(dir.quiescent());
}

}  // namespace
}  // namespace lcdc::proto
