// Out-of-core model checking (DESIGN.md §14): spilled frontiers must be
// byte-identical to the in-RAM engine for any --jobs, checkpoints must
// resume to the exact counts of an uninterrupted run (including across a
// simulated kill that leaves torn tails), the lossy visited modes must
// report calibrated omission bounds while agreeing with exact counts on
// small spaces, and every corrupt / truncated / mismatched on-disk input
// must raise SimError — never UB or an invariant abort.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "mc/model_checker.hpp"
#include "mc/spill.hpp"

namespace lcdc {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory, removed on scope exit.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path((fs::temp_directory_path() / ("lcdc_ooc_" + tag)).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

mc::McConfig baseConfig(NodeId procs, BlockId blocks) {
  mc::McConfig cfg;
  cfg.numProcessors = procs;
  cfg.numBlocks = blocks;
  return cfg;
}

void expectSameCounts(const mc::McResult& a, const mc::McResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.statesExplored, b.statesExplored) << label;
  EXPECT_EQ(a.transitions, b.transitions) << label;
  EXPECT_EQ(a.frontierPeak, b.frontierPeak) << label;
  EXPECT_EQ(a.wavesCompleted, b.wavesCompleted) << label;
  EXPECT_EQ(a.ok(), b.ok()) << label;
  EXPECT_EQ(a.deadlockFound, b.deadlockFound) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.perf.storedStates, b.perf.storedStates) << label;
  EXPECT_EQ(a.perf.storedEncodingBytes, b.perf.storedEncodingBytes) << label;
}

// -- spill == in-RAM ----------------------------------------------------------

TEST(Spill, MatchesInRamEngineOnGoldenConfigsForAnyJobs) {
  struct Case {
    NodeId procs;
    BlockId blocks;
    bool symmetry;
    bool por;
    bool modelData;
    std::uint64_t maxDepth;
  };
  const Case cases[] = {
      {2, 1, false, false, false, 0},
      {2, 1, true, true, false, 0},
      {2, 1, false, false, true, 0},
      {3, 1, true, false, false, 12},
      {2, 2, false, false, false, 10},
  };
  for (const Case& c : cases) {
    mc::McConfig ram = baseConfig(c.procs, c.blocks);
    ram.symmetry = c.symmetry;
    ram.por = c.por;
    ram.modelData = c.modelData;
    ram.maxDepth = c.maxDepth;
    const mc::McResult base = mc::explore(ram);
    for (const unsigned jobs : {1u, 2u, 4u}) {
      TempDir dir("spill_golden");
      mc::McConfig sp = ram;
      sp.jobs = jobs;
      sp.spillDir = dir.path;
      const mc::McResult r = mc::explore(sp);
      const std::string label = std::to_string(c.procs) + "x" +
                                std::to_string(c.blocks) + " jobs=" +
                                std::to_string(jobs);
      expectSameCounts(base, r, label);
      EXPECT_GT(r.perf.spillSegments, 0u) << label;
      EXPECT_GT(r.perf.spillBytesWritten, 0u) << label;
    }
  }
}

// State-capped runs stop at a wave boundary, so the wave-synchronous
// counts (states explored, waves, frontier peak) are pinned.  The
// *transition* total of the final partial wave is not: frontier order
// within a wave depends on chunk scheduling (pre-existing engine
// behaviour, identical for the in-RAM arenas), so the cap cuts a
// scheduling-dependent prefix.  Only assert what the engine guarantees.
TEST(Spill, StateCapStopsAtTheSameWaveBoundaryAsInRam) {
  mc::McConfig ram = baseConfig(3, 1);
  ram.maxStates = 5'000;
  const mc::McResult base = mc::explore(ram);
  EXPECT_TRUE(base.hitStateLimit);
  for (const unsigned jobs : {1u, 3u}) {
    TempDir dir("spill_cap");
    mc::McConfig sp = ram;
    sp.jobs = jobs;
    sp.spillDir = dir.path;
    const mc::McResult r = mc::explore(sp);
    const std::string label = "capped jobs=" + std::to_string(jobs);
    EXPECT_EQ(base.statesExplored, r.statesExplored) << label;
    EXPECT_EQ(base.wavesCompleted, r.wavesCompleted) << label;
    EXPECT_EQ(base.frontierPeak, r.frontierPeak) << label;
    EXPECT_EQ(base.ok(), r.ok()) << label;
    EXPECT_TRUE(r.hitStateLimit) << label;
  }
}

TEST(Spill, MutantVerdictSurvivesSpilling) {
  mc::McConfig ram = baseConfig(2, 1);
  ram.proto.mutant = Mutant::SkipInvAckWait;
  const mc::McResult base = mc::explore(ram);
  ASSERT_FALSE(base.ok());
  TempDir dir("spill_mutant");
  mc::McConfig sp = ram;
  sp.spillDir = dir.path;
  const mc::McResult r = mc::explore(sp);
  expectSameCounts(base, r, "mutant");
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(r.counterexample->schedule.empty());
}

TEST(Spill, DrainedRunLeavesNoSegmentsBehind) {
  TempDir dir("spill_cleanup");
  mc::McConfig cfg = baseConfig(2, 1);
  cfg.spillDir = dir.path;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok());
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u) << "segments must be deleted as waves drain";
}

// A checkpoint pins its pending wave's segments on disk; once a newer
// checkpoint supersedes it, those segments must be reclaimed — otherwise a
// checkpoint-every-wave run accumulates one wave's worth of dead segments
// per wave for its whole life.  After a completed run, only files the
// final manifest references (plus the manifest and visited log) may
// remain.
TEST(Spill, SupersededCheckpointSegmentsAreReclaimed) {
  TempDir dir("ckpt_reclaim");
  mc::McConfig cfg = baseConfig(2, 1);
  cfg.checkpointDir = dir.path;
  cfg.checkpointEvery = 1;
  const mc::McResult r = mc::explore(cfg);
  EXPECT_TRUE(r.ok());
  const mc::CheckpointManifest m = mc::readManifest(dir.path);
  std::set<std::string> referenced = {"MANIFEST", "visited.log"};
  for (const mc::SegmentInfo& s : m.frontier) {
    referenced.insert(fs::path(s.path).filename().string());
  }
  for (const auto& e : fs::directory_iterator(dir.path)) {
    EXPECT_TRUE(referenced.count(e.path().filename().string()) != 0)
        << "stale file from a superseded checkpoint: " << e.path();
  }
}

// -- checkpoint / resume ------------------------------------------------------

TEST(Checkpoint, MemLimitStopResumesToUninterruptedCounts) {
  mc::McConfig full = baseConfig(3, 1);
  const mc::McResult base = mc::explore(full);

  TempDir dir("ckpt_memlimit");
  mc::McConfig limited = full;
  limited.memLimitMb = 12;
  limited.checkpointDir = dir.path;
  const mc::McResult stopped = mc::explore(limited);
  ASSERT_TRUE(stopped.memLimitHit);
  ASSERT_LT(stopped.statesExplored, base.statesExplored);
  EXPECT_GT(stopped.perf.checkpointBytes, 0u);

  mc::McConfig resume = full;
  resume.resumeDir = dir.path;
  const mc::McResult r = mc::explore(resume);
  EXPECT_TRUE(r.resumed);
  EXPECT_FALSE(r.memLimitHit);
  expectSameCounts(base, r, "resumed");
}

TEST(Checkpoint, ResumeIsJobsIndependent) {
  mc::McConfig full = baseConfig(3, 1);
  const mc::McResult base = mc::explore(full);
  TempDir dir("ckpt_jobs");
  mc::McConfig limited = full;
  limited.memLimitMb = 12;
  limited.checkpointDir = dir.path;
  limited.jobs = 3;
  ASSERT_TRUE(mc::explore(limited).memLimitHit);
  mc::McConfig resume = full;
  resume.resumeDir = dir.path;
  resume.jobs = 2;
  expectSameCounts(base, mc::explore(resume), "jobs 3 then 2");
}

TEST(Checkpoint, DepthStopResumesWithALargerDepth) {
  mc::McConfig deep = baseConfig(3, 1);
  deep.maxDepth = 12;
  const mc::McResult base = mc::explore(deep);

  TempDir dir("ckpt_depth");
  mc::McConfig shallow = deep;
  shallow.maxDepth = 6;
  shallow.checkpointDir = dir.path;
  shallow.checkpointEvery = 4;  // off-cadence: the depth stop still writes
  ASSERT_TRUE(mc::explore(shallow).ok());

  mc::McConfig resume = deep;
  resume.resumeDir = dir.path;
  expectSameCounts(base, mc::explore(resume), "depth 6 -> 12");
}

TEST(Checkpoint, TornTailPastManifestIsIgnoredOnResume) {
  // A kill mid-write can leave bytes in visited.log past the manifest's
  // pinned length, and stray unsealed segment data.  Resume must truncate
  // the torn tail and reach the uninterrupted counts.
  mc::McConfig full = baseConfig(3, 1);
  const mc::McResult base = mc::explore(full);
  TempDir dir("ckpt_torn");
  mc::McConfig limited = full;
  limited.memLimitMb = 12;
  limited.checkpointDir = dir.path;
  ASSERT_TRUE(mc::explore(limited).memLimitHit);
  {
    std::ofstream log(dir.path + "/visited.log",
                      std::ios::binary | std::ios::app);
    const char junk[] = "torn-write-garbage";
    log.write(junk, sizeof junk);
  }
  mc::McConfig resume = full;
  resume.resumeDir = dir.path;
  expectSameCounts(base, mc::explore(resume), "torn tail");
}

TEST(Checkpoint, CompactModeRoundTrips) {
  mc::McConfig full = baseConfig(3, 1);
  full.visited = mc::VisitedMode::Compact;
  const mc::McResult base = mc::explore(full);
  TempDir dir("ckpt_compact");
  mc::McConfig limited = full;
  limited.memLimitMb = 10;
  limited.checkpointDir = dir.path;
  ASSERT_TRUE(mc::explore(limited).memLimitHit);
  mc::McConfig resume = full;
  resume.resumeDir = dir.path;
  const mc::McResult r = mc::explore(resume);
  expectSameCounts(base, r, "compact resume");
  EXPECT_GT(r.omissionBound, 0.0);
}

TEST(Checkpoint, BitstateModeRoundTrips) {
  mc::McConfig full = baseConfig(3, 1);
  full.visited = mc::VisitedMode::Bitstate;
  full.bitstateMb = 8;
  const mc::McResult base = mc::explore(full);
  TempDir dir("ckpt_bitstate");
  mc::McConfig limited = full;
  limited.memLimitMb = 16;
  limited.checkpointDir = dir.path;
  ASSERT_TRUE(mc::explore(limited).memLimitHit);
  mc::McConfig resume = full;
  resume.resumeDir = dir.path;
  expectSameCounts(base, mc::explore(resume), "bitstate resume");
}

// -- lossy visited modes ------------------------------------------------------

TEST(VisitedModes, CompactAgreesWithExactOnSmallSpaces) {
  // At a few thousand states the n(n-1)/2 / 2^64 collision bound is
  // ~1e-13 — a count mismatch here means a logic bug, not bad luck.
  for (const bool modelData : {false, true}) {
    mc::McConfig exact = baseConfig(2, 1);
    exact.modelData = modelData;
    mc::McConfig compact = exact;
    compact.visited = mc::VisitedMode::Compact;
    const mc::McResult a = mc::explore(exact);
    const mc::McResult b = mc::explore(compact);
    expectSameCounts(a, b, modelData ? "data" : "plain");
    EXPECT_EQ(b.omissionBound, b.perf.omissionBound);
    EXPECT_GT(b.omissionBound, 0.0);
    EXPECT_LT(b.omissionBound, 1e-9);
  }
}

TEST(VisitedModes, BitstateAgreesWithExactOnSmallSpaces) {
  mc::McConfig exact = baseConfig(2, 1);
  mc::McConfig bit = exact;
  bit.visited = mc::VisitedMode::Bitstate;
  bit.bitstateMb = 8;
  const mc::McResult a = mc::explore(exact);
  const mc::McResult b = mc::explore(bit);
  EXPECT_EQ(a.statesExplored, b.statesExplored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.wavesCompleted, b.wavesCompleted);
  EXPECT_GT(b.omissionBound, 0.0);
  EXPECT_LT(b.omissionBound, 1e-6)
      << "2k states in a 2^26-bit array must report a tiny bound";
}

TEST(VisitedModes, BitstateBoundDegradesWithATinyArray) {
  // Squeezing the same space into the minimum array (2^20 bits) must
  // report a measurably larger bound: the formula reacts to fill.
  mc::McConfig small = baseConfig(2, 1);
  small.visited = mc::VisitedMode::Bitstate;
  small.bitstateMb = 1;
  mc::McConfig big = small;
  big.bitstateMb = 64;
  const double boundSmall = mc::explore(small).omissionBound;
  const double boundBig = mc::explore(big).omissionBound;
  EXPECT_GT(boundSmall, boundBig);
}

TEST(VisitedModes, LossyCounterexampleCarriesNoSchedule) {
  mc::McConfig cfg = baseConfig(2, 1);
  cfg.proto.mutant = Mutant::SkipInvAckWait;
  cfg.visited = mc::VisitedMode::Compact;
  const mc::McResult r = mc::explore(cfg);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_TRUE(r.counterexample->schedule.empty())
      << "lossy modes keep no parent edges";
}

TEST(VisitedModes, BitstateRejectsPor) {
  mc::McConfig cfg = baseConfig(2, 1);
  cfg.visited = mc::VisitedMode::Bitstate;
  cfg.por = true;
  EXPECT_THROW((void)mc::explore(cfg), SimError);
}

TEST(VisitedModes, DeterministicForAnyJobs) {
  for (const mc::VisitedMode mode :
       {mc::VisitedMode::Compact, mc::VisitedMode::Bitstate}) {
    mc::McConfig one = baseConfig(3, 1);
    one.visited = mode;
    one.bitstateMb = 8;
    one.maxDepth = 10;
    mc::McConfig four = one;
    four.jobs = 4;
    const mc::McResult a = mc::explore(one);
    const mc::McResult b = mc::explore(four);
    EXPECT_EQ(a.statesExplored, b.statesExplored) << mc::toString(mode);
    EXPECT_EQ(a.transitions, b.transitions) << mc::toString(mode);
    EXPECT_EQ(a.omissionBound, b.omissionBound) << mc::toString(mode);
  }
}

// -- corrupt on-disk inputs ---------------------------------------------------

TEST(SpillHygiene, ConfigMismatchOnResumeRaisesSimError) {
  TempDir dir("bad_config");
  mc::McConfig cfg = baseConfig(3, 1);
  cfg.memLimitMb = 12;
  cfg.checkpointDir = dir.path;
  ASSERT_TRUE(mc::explore(cfg).memLimitHit);
  mc::McConfig other = baseConfig(2, 1);
  other.resumeDir = dir.path;
  EXPECT_THROW((void)mc::explore(other), SimError);
  mc::McConfig wrongMode = baseConfig(3, 1);
  wrongMode.visited = mc::VisitedMode::Compact;
  wrongMode.resumeDir = dir.path;
  EXPECT_THROW((void)mc::explore(wrongMode), SimError);
}

TEST(SpillHygiene, CorruptFilesRaiseSimErrorNotUb) {
  TempDir dir("bad_files");
  mc::McConfig cfg = baseConfig(3, 1);
  cfg.memLimitMb = 12;
  cfg.checkpointDir = dir.path;
  ASSERT_TRUE(mc::explore(cfg).memLimitHit);

  std::string segPath;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().extension() == ".seg") segPath = e.path().string();
  }
  ASSERT_FALSE(segPath.empty());
  const auto originalSeg = [&] {
    std::ifstream in(segPath, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  const auto writeSeg = [&](const std::string& bytes) {
    std::ofstream out(segPath, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  const auto resume = [&] {
    mc::McConfig r = baseConfig(3, 1);
    r.resumeDir = dir.path;
    return mc::explore(r);
  };

  // Truncated to a partial header.
  writeSeg(originalSeg.substr(0, 20));
  EXPECT_THROW((void)resume(), SimError);
  // Truncated mid-payload.
  writeSeg(originalSeg.substr(0, originalSeg.size() / 2));
  EXPECT_THROW((void)resume(), SimError);
  // Wrong magic.
  {
    std::string bad = originalSeg;
    bad[0] = 'X';
    writeSeg(bad);
    EXPECT_THROW((void)resume(), SimError);
  }
  // Version bump.
  {
    std::string bad = originalSeg;
    bad[8] = 9;
    writeSeg(bad);
    EXPECT_THROW((void)resume(), SimError);
  }
  // Garbled record count (claims more records than the file holds).
  {
    std::string bad = originalSeg;
    bad[24] = '\xFF';
    bad[25] = '\xFF';
    writeSeg(bad);
    EXPECT_THROW((void)resume(), SimError);
  }
  writeSeg(originalSeg);

  // Garbled manifest: truncation and a foreign header line.
  const std::string manifestPath = dir.path + "/MANIFEST";
  const auto originalManifest = [&] {
    std::ifstream in(manifestPath, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  {
    std::ofstream out(manifestPath, std::ios::binary | std::ios::trunc);
    out.write(originalManifest.data(),
              static_cast<std::streamsize>(originalManifest.size() / 3));
  }
  EXPECT_THROW((void)resume(), SimError);
  {
    std::ofstream out(manifestPath, std::ios::binary | std::ios::trunc);
    out << "not-a-manifest v1\n";
  }
  EXPECT_THROW((void)resume(), SimError);
  {
    std::ofstream out(manifestPath, std::ios::binary | std::ios::trunc);
    out.write(originalManifest.data(),
              static_cast<std::streamsize>(originalManifest.size()));
  }

  // Truncated visited log *below* the manifest's pinned length.
  fs::resize_file(dir.path + "/visited.log", 16);
  EXPECT_THROW((void)resume(), SimError);
}

TEST(SpillHygiene, MissingCheckpointDirectoryRaisesSimError) {
  mc::McConfig cfg = baseConfig(2, 1);
  cfg.resumeDir = (fs::temp_directory_path() / "lcdc_ooc_nodir").string();
  fs::remove_all(cfg.resumeDir);
  EXPECT_THROW((void)mc::explore(cfg), SimError);
}

TEST(SpillHygiene, ConflictingDirectoriesRaiseSimError) {
  TempDir a("dir_a");
  TempDir b("dir_b");
  mc::McConfig cfg = baseConfig(2, 1);
  cfg.spillDir = a.path;
  cfg.checkpointDir = b.path;
  EXPECT_THROW((void)mc::explore(cfg), SimError);
}

}  // namespace
}  // namespace lcdc
