// lcdc — command-line driver for the whole reproduction.
//
//   lcdc run       simulate a workload on a coherence backend (--protocol
//                  dir|bus|tardis), verify the Section 3 properties,
//                  optionally dump the trace
//   lcdc verify    re-verify a previously dumped trace offline
//   lcdc mc        exhaustively model-check a small configuration
//   lcdc campaign  fan out thousands of seeded runs across a thread pool,
//                  aggregate transaction-case coverage and checker verdicts,
//                  and delta-debug any failure into a minimal reproducer
//   lcdc serve     host a message-passing DSM: one thread per node over TCP
//                  loopback, event streams certified live by a streaming
//                  Lamport-clock checker on a merge node
//   lcdc load      drive a running serve with a generated workload and
//                  measure throughput and chunk round-trip latency
//
// Examples:
//   lcdc run --procs 8 --dirs 4 --blocks 64 --ops 5000 --workload hot
//   lcdc run --mutant forward-stale-value --trace /tmp/bug.trace
//   lcdc verify --trace /tmp/bug.trace --procs 6
//   lcdc mc --procs 3 --blocks 1
//   lcdc campaign --seeds 1024 --jobs 8 --until-coverage
//   lcdc campaign --seeds 256 --mutant no-busy-nack --minimize --out /tmp/cex
//   lcdc serve --nodes 3 --port 7400
//   lcdc load --port 7400 --ops 200000 --clients 3 --mix hot
//
// Exit codes (stable; campaign scripts and CI discriminate on them):
//   0  success
//   1  verification violations
//   2  usage error (unknown command/option, malformed value)
//   3  campaign detected failures
//   4  simulation did not reach quiescence / protocol invariant fired
//   5  I/O or trace-format error
//   6  mc stopped at --mem-limit-mb (resumable when --checkpoint was given)
#include <algorithm>
#include <chrono>
#include <csignal>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "campaign/campaign.hpp"
#include "common/expect.hpp"
#include "dsm/load.hpp"
#include "dsm/serve.hpp"
#include "mc/model_checker.hpp"
#include "mc/replay.hpp"
#include "proto/observer.hpp"
#include "sim/perf.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "verify/stream.hpp"
#include "workload/generators.hpp"

namespace {

using namespace lcdc;

constexpr int kExitOk = 0;
constexpr int kExitViolations = 1;
constexpr int kExitUsage = 2;
constexpr int kExitCampaignFailed = 3;
constexpr int kExitSimFailed = 4;
constexpr int kExitIo = 5;
/// `lcdc mc --mem-limit-mb` stopped at a wave boundary before finishing
/// (and found no violation up to that point).
constexpr int kExitMemLimit = 6;

constexpr const char* kVersion = "1.0.0";

/// Malformed invocation: unknown command/option, missing or unparsable
/// value.  Distinct from SimError so scripts can tell "you called it
/// wrong" (exit 2) from "the input file is bad" (exit 5).
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-command option schema: every key takes a value, every flag stands
/// alone.  Anything not listed is rejected up front.
struct OptionSpec {
  std::set<std::string> keys;
  std::set<std::string> flags;
};

struct Args {
  std::map<std::string, std::string> kv;
  std::vector<std::string> flags;

  [[nodiscard]] std::uint64_t num(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    try {
      std::size_t pos = 0;
      const std::uint64_t value = std::stoull(it->second, &pos);
      if (pos != it->second.size() || it->second.front() == '-') {
        throw std::invalid_argument(it->second);
      }
      return value;
    } catch (const std::exception&) {
      throw UsageError("--" + key + " expects a non-negative integer, got '" +
                       it->second + "'");
    }
  }
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& flag) const {
    return std::find(flags.begin(), flags.end(), flag) != flags.end();
  }
};

Args parse(int argc, char** argv, int from, const std::string& cmd,
           const OptionSpec& spec) {
  Args args;
  for (int i = from; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw UsageError("unexpected argument '" + a + "' for '" + cmd + "'");
    }
    const std::string name = a.substr(2);
    if (spec.keys.contains(name)) {
      if (i + 1 >= argc) {
        throw UsageError("--" + name + " requires a value");
      }
      args.kv[name] = argv[++i];
    } else if (spec.flags.contains(name)) {
      if (!args.has(name)) args.flags.push_back(name);
    } else {
      throw UsageError("unknown option --" + name + " for '" + cmd + "'");
    }
  }
  return args;
}

workload::Kind parseWorkload(const std::string& name) {
  try {
    return workload::kindFromName(name);
  } catch (const SimError& e) {
    throw UsageError(e.what());
  }
}

ProtocolKind parseProtocol(const std::string& name) {
  try {
    return proto::protocolFromName(name);
  } catch (const SimError& e) {
    throw UsageError(e.what());
  }
}

Mutant parseMutant(const std::string& name) {
  const Mutant all[] = {Mutant::None,
                        Mutant::SkipInvAckWait,
                        Mutant::StaleDataFromHome,
                        Mutant::IgnoreInvalidation,
                        Mutant::ForwardStaleValue,
                        Mutant::NoBusyNack,
                        Mutant::NoDeadlockDetection,
                        Mutant::DropLeaseBump};
  for (const Mutant m : all) {
    if (name == toString(m)) return m;
  }
  throw UsageError("unknown mutant: " + name);
}

mc::VisitedMode parseVisitedMode(const std::string& name) {
  if (name == "exact") return mc::VisitedMode::Exact;
  if (name == "compact") return mc::VisitedMode::Compact;
  if (name == "bitstate") return mc::VisitedMode::Bitstate;
  throw UsageError("--visited expects exact|compact|bitstate, got '" + name +
                   "'");
}

int reportAndExit(const verify::CheckReport& report, bool quiet) {
  std::cout << "verification: " << report.summary() << '\n';
  if (!report.ok() && !quiet) {
    std::size_t shown = 0;
    for (const auto& v : report.violations) {
      std::cout << "  [" << v.check << "] " << v.detail << '\n';
      if (++shown == 10) break;
    }
  }
  return report.ok() ? kExitOk : kExitViolations;
}

int cmdRun(const Args& args) {
  const NodeId procs = static_cast<NodeId>(args.num("procs", 8));
  const std::string workloadName = args.str("workload", "uniform");

  workload::WorkloadConfig w;
  w.numProcessors = procs;
  w.numBlocks = static_cast<BlockId>(args.num("blocks", 64));
  w.wordsPerBlock = static_cast<WordIdx>(args.num("words", 4));
  w.opsPerProcessor = args.num("ops", 2000);
  w.storePercent = static_cast<std::uint32_t>(args.num("store-pct", 35));
  w.evictPercent = static_cast<std::uint32_t>(args.num("evict-pct", 6));
  w.seed = args.num("seed", 1);
  auto programs = workload::make(parseWorkload(workloadName), w);
  if (args.kv.contains("prefetch")) {
    programs = workload::addPrefetchHints(
        std::move(programs), /*lookahead=*/8,
        static_cast<std::uint32_t>(args.num("prefetch", 25)), w.seed);
  }

  const std::string model = args.str("model", "sc");
  if (model != "sc" && model != "tso") {
    throw UsageError("unknown model: " + model + " (sc|tso)");
  }
  // --streaming verifies online through the observer pipeline; --no-trace
  // additionally drops the recorder, so memory stays O(blocks + procs).
  const bool noTrace = args.has("no-trace");
  const bool streaming = args.has("streaming") || noTrace;
  if (noTrace && args.kv.contains("trace")) {
    throw UsageError("--no-trace conflicts with --trace FILE");
  }
  const std::string traceFormat = args.str("trace-format", "text");
  if (traceFormat != "text" && traceFormat != "binary") {
    throw UsageError("unknown trace format: " + traceFormat +
                     " (text|binary)");
  }
  const bool keepTrace = !streaming || args.kv.contains("trace");

  trace::Trace trace;
  verify::StatsObserver stats;
  std::optional<verify::StreamCheckerSet> checkers;
  proto::TeeSink tee;
  if (keepTrace) tee.attach(trace);
  tee.attach(stats);

  // --perf: wall-clock + hot-loop counters, printed after the deterministic
  // output (like `lcdc mc --perf`, nothing here is diffable between runs).
  const bool perf = args.has("perf");
  std::optional<sim::SimPerfCounters> perfCounters;

  // One backend-driven path for every protocol (DESIGN.md §12): the
  // SystemConfig is built once, the backend decides what it honours and
  // rejects the rest loudly.
  const ProtocolKind protocol = parseProtocol(args.str("protocol", "dir"));
  const proto::CoherenceBackend& backend = proto::backendFor(protocol);

  SystemConfig cfg;
  cfg.protocol = protocol;
  cfg.numProcessors = procs;
  cfg.numDirectories =
      static_cast<NodeId>(args.num("dirs", std::max<NodeId>(1, procs / 2)));
  cfg.numBlocks = w.numBlocks;
  cfg.proto.wordsPerBlock = w.wordsPerBlock;
  cfg.cacheCapacity = static_cast<std::uint32_t>(args.num("capacity", 0));
  cfg.minLatency = args.num("min-latency", 1);
  cfg.maxLatency = args.num("max-latency", 40);
  cfg.busSnoopDelayMax = args.num("snoop-delay", 16);
  cfg.seed = w.seed;
  cfg.proto.putSharedEnabled = !args.has("no-putshared");
  cfg.proto.mutant = parseMutant(args.str("mutant", "none"));
  cfg.proto.leaseLength =
      static_cast<std::uint32_t>(args.num("lease", 16));
  cfg.storeBufferDepth =
      static_cast<std::uint32_t>(args.num("store-buffer", 0));

  verify::VerifyConfig vc;
  std::unique_ptr<proto::BackendSystem> sys;
  try {
    vc = backend.verifyConfig(cfg);
    sys = backend.makeSystem(cfg, tee);
  } catch (const SimError& e) {
    // Unsupported combination (e.g. --protocol bus --store-buffer 2): the
    // invocation, not the input, is at fault.
    throw UsageError(e.what());
  }
  if (model == "tso") vc.tso = true;
  if (streaming) {
    checkers.emplace(vc);
    tee.attach(*checkers);
  }
  for (NodeId p = 0; p < procs; ++p) sys->setProgram(p, programs[p]);
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = sys->run();
  if (perf && sys->network() != nullptr) {
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    perfCounters.emplace();
    perfCounters->note(r.eventsProcessed, r.opsBound, nanos,
                       sys->network()->queueStats());
  }
  const std::string outcome = toString(r.outcome);
  const std::uint64_t opsBound = r.opsBound;
  const bool runOk = r.ok();

  std::cout << "simulation: " << outcome << " — " << opsBound
            << " operations, " << stats.stats().serializations
            << " transactions\n";
  sys->printStats(std::cout);
  if (perfCounters) perfCounters->print(std::cout);
  if (perf && !perfCounters) {
    std::cout << "sim perf: (--perf needs a backend with a point-to-point "
                 "network; the bus is a centralized medium)\n";
  }
  if (const auto it = args.kv.find("trace"); it != args.kv.end()) {
    if (traceFormat == "binary") {
      trace::saveFileBinary(trace, it->second);
    } else {
      trace::saveFile(trace, it->second);
    }
    std::cout << "trace written to " << it->second << " (" << traceFormat
              << ")\n";
  }
  if (!runOk) return kExitSimFailed;
  if (vc.tso) std::cout << "(verifying against TSO)\n";
  if (streaming) {
    checkers->finish();
    std::cout << "checker state: " << checkers->memoryFootprint()
              << " bytes (streaming)\n";
    return reportAndExit(checkers->report(), args.has("quiet"));
  }
  return reportAndExit(verify::checkAll(trace, vc), args.has("quiet"));
}

int cmdVerify(const Args& args) {
  const auto it = args.kv.find("trace");
  if (it == args.kv.end()) throw UsageError("verify requires --trace FILE");
  const trace::Trace trace = trace::loadFile(it->second);
  verify::VerifyConfig cfg{static_cast<NodeId>(args.num("procs", 8))};
  cfg.expectComplete = !args.has("partial");
  cfg.tso = args.str("model", "sc") == "tso";
  std::cout << "loaded " << trace.operations().size() << " operations, "
            << trace.serializations().size() << " transactions\n";
  return reportAndExit(verify::checkAll(trace, cfg), args.has("quiet"));
}

/// The `--perf` block.  Byte counters and the probe histogram are exact;
/// the nanosecond lines are wall-clock measurements and scheduling-
/// dependent, so nothing here should be diffed between runs.
void printMcPerf(const mc::McResult& r) {
  const mc::McPerfCounters& p = r.perf;
  const auto per = [](std::uint64_t total, std::uint64_t n) {
    return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
  };
  std::cout << "perf: encodes " << p.encodeCalls << ", inserts "
            << p.insertCalls << ", stored " << p.storedStates << " ("
            << per(p.storedEncodingBytes, p.storedStates)
            << " enc B/state)\n"
            << "perf: visited bytes " << r.visitedBytes << " ("
            << per(r.visitedBytes, p.storedStates)
            << " B/state), frontier-arena peak " << r.frontierBytesPeak
            << " B\n"
            << "perf: tracked peak " << r.trackedBytesPeak
            << " B, process peak RSS " << r.peakRssBytes << " B\n"
            << "perf: probe histogram [0,1,2,3-4,5-8,>8]:";
  for (const std::uint64_t b : p.probeHist) std::cout << ' ' << b;
  std::cout << '\n';
  if (p.spillSegments != 0 || p.checkpointBytes != 0) {
    std::cout << "perf: spill " << p.spillSegments << " segments, "
              << p.spillBytesWritten << " B written, " << p.spillBytesRead
              << " B read, checkpoint " << p.checkpointBytes
              << " B written\n";
  }
  if (r.omissionBound > 0) {
    std::cout << "perf: P(omission) <= " << r.omissionBound << '\n';
  }
  if (p.expandNanos != 0) {
    std::cout << "perf: encode " << per(p.encodeNanos, p.encodeCalls)
              << " ns/call, insert " << per(p.insertNanos, p.insertCalls)
              << " ns/call, world save "
              << per(p.worldSaveNanos, p.storedStates) << " ns/state, load "
              << per(p.worldLoadNanos, r.statesExplored)
              << " ns/state, expand total " << p.expandNanos / 1'000'000
              << " ms\n";
  }
}

int cmdMc(const Args& args) {
  mc::McConfig cfg;
  cfg.protocol = parseProtocol(args.str("protocol", "dir"));
  if (cfg.protocol == ProtocolKind::Bus) {
    throw UsageError(
        "the bus backend is not model-checkable (--protocol dir|tardis)");
  }
  if (cfg.protocol == ProtocolKind::Tardis && args.has("replay")) {
    throw UsageError(
        "--replay is directory-only: tardis counterexamples carry no "
        "replayable schedule");
  }
  cfg.numProcessors = static_cast<NodeId>(args.num("procs", 2));
  cfg.numBlocks = static_cast<BlockId>(args.num("blocks", 1));
  cfg.proto.leaseLength =
      static_cast<std::uint32_t>(args.num("lease", 16));
  cfg.maxStates = args.num("max-states", 2'000'000);
  cfg.maxDepth = args.num("max-depth", 0);
  cfg.jobs = static_cast<unsigned>(args.num("jobs", 1));
  if (cfg.jobs == 0) throw UsageError("--jobs must be at least 1");
  cfg.symmetry = args.has("symmetry");
  cfg.por = args.has("por");
  cfg.modelData = args.has("model-data");
  cfg.allowEvictions = !args.has("no-evictions");
  cfg.proto.putSharedEnabled = !args.has("no-putshared");
  cfg.proto.mutant = parseMutant(args.str("mutant", "none"));
  cfg.memLimitMb = args.num("mem-limit-mb", 0);
  cfg.perf = args.has("perf");
  cfg.visited = parseVisitedMode(args.str("visited", "exact"));
  cfg.bitstateMb = args.num("bitstate-mb", 64);
  if (cfg.bitstateMb == 0) throw UsageError("--bitstate-mb must be >= 1");
  cfg.spillDir = args.str("spill", "");
  cfg.checkpointDir = args.str("checkpoint", "");
  cfg.checkpointEvery = args.num("checkpoint-every", 1);
  cfg.resumeDir = args.str("resume", "");
  // Flag-conflict diagnosis belongs to the usage layer (exit 2);
  // mc::explore re-validates for API callers (SimError, exit 5).
  if (cfg.visited == mc::VisitedMode::Bitstate && cfg.por) {
    throw UsageError("--visited bitstate cannot combine with --por "
                     "(bitstate assigns no discovery ids)");
  }
  if (!cfg.resumeDir.empty() && !cfg.checkpointDir.empty() &&
      cfg.resumeDir != cfg.checkpointDir) {
    throw UsageError("--resume already continues checkpointing into its "
                     "directory; drop --checkpoint or make them equal");
  }
  {
    const std::string ckpt =
        cfg.checkpointDir.empty() ? cfg.resumeDir : cfg.checkpointDir;
    if (!cfg.spillDir.empty() && !ckpt.empty() && cfg.spillDir != ckpt) {
      throw UsageError("--spill must match --checkpoint/--resume "
                       "(checkpoints reference segments by basename)");
    }
  }
  const mc::McResult r = mc::explore(cfg);
  std::cout << "states: " << r.statesExplored
            << (r.hitStateLimit ? " (limit hit)" : "")
            << (r.memLimitHit
                    ? (r.perf.checkpointBytes != 0 || r.resumed
                           ? " (mem limit hit, checkpointed)"
                           : " (mem limit hit)")
                    : "")
            << (r.resumed ? " (resumed)" : "")
            << ", transitions: " << r.transitions
            << ", peak frontier: " << r.frontierPeak
            << ", waves: " << r.wavesCompleted;
  if (cfg.por) std::cout << ", ample states: " << r.ampleStates;
  if (cfg.visited != mc::VisitedMode::Exact) {
    std::cout << ", visited: " << mc::toString(cfg.visited)
              << ", P(omission) <= " << r.omissionBound;
  }
  std::cout << '\n';
  if (cfg.perf) printMcPerf(r);
  if (r.deadlockFound) std::cout << "DEADLOCK state reachable\n";
  for (const auto& v : r.violations) std::cout << "VIOLATION: " << v << '\n';
  if (r.counterexample) {
    const mc::Counterexample& cex = *r.counterexample;
    std::cout << "counterexample (" << cex.kind << ", "
              << cex.schedule.size() << " steps): " << cex.detail << '\n';
    std::size_t step = 0;
    for (const mc::Action& a : cex.schedule) {
      std::cout << "  " << step++ << ": " << mc::toString(a) << '\n';
    }
    if (cex.schedule.empty() && cfg.visited != mc::VisitedMode::Exact) {
      std::cout << "  (no schedule: --visited " << mc::toString(cfg.visited)
                << " keeps no parent edges; rerun with --visited exact)\n";
    }
    if (args.has("replay") && cex.schedule.empty()) {
      std::cout << "replay: nothing to replay (no schedule)\n";
    } else if (args.has("replay")) {
      const mc::ReplayResult rep = mc::replayCounterexample(cfg, cex.schedule);
      std::cout << "replay: "
                << (rep.divergence.empty() ? "schedule applied"
                                           : "DIVERGED: " + rep.divergence)
                << '\n';
      if (!rep.invariant.empty()) {
        std::cout << "replay invariant: " << rep.invariant << '\n';
      }
      if (rep.deadlocked) std::cout << "replay: simulator deadlocked\n";
      std::cout << "replay checkers: " << rep.report.summary() << '\n';
      for (const auto& v : rep.report.violations) {
        std::cout << "  [" << v.check << "] " << v.detail << '\n';
      }
    }
  } else if (args.has("replay")) {
    std::cout << "replay: nothing to replay (no counterexample)\n";
  }
  if (!r.ok()) return kExitViolations;
  if (r.hitStateLimit) {
    // For the directory engine the cap is exhaustiveness lost — report it
    // as an inconclusive (non-zero) verdict.  The Tardis engine is
    // *documented* as bounded-exhaustive (rank-rebased timestamps keep
    // minting fresh states), so a clean capped run is its success mode.
    if (cfg.protocol != ProtocolKind::Tardis) return kExitViolations;
    std::cout << "bounded-exhaustive: clean within the state cap\n";
  }
  if (r.memLimitHit) return kExitMemLimit;
  return kExitOk;
}

int cmdCampaign(const Args& args) {
  campaign::CampaignConfig cfg;
  cfg.protocol = parseProtocol(args.str("protocol", "dir"));
  cfg.masterSeed = args.num("master-seed", 1);
  cfg.seeds = args.num("seeds", 256);
  if (cfg.seeds == 0) throw UsageError("--seeds must be at least 1");
  cfg.jobs = static_cast<unsigned>(args.num("jobs", 1));
  if (cfg.jobs == 0) throw UsageError("--jobs must be at least 1");
  const std::string workloadName = args.str("workload", "mixed");
  if (workloadName != "mixed") {
    cfg.workload = parseWorkload(workloadName);
  }
  cfg.mutant = parseMutant(args.str("mutant", "none"));
  cfg.untilCoverage = args.has("until-coverage");
  cfg.minimize = args.has("minimize");
  cfg.maxMinimized = args.num("max-minimized", 4);
  cfg.outDir = args.str("out", "");
  cfg.maxEventsPerRun = args.num("max-events", 5'000'000);
  cfg.minimizeAttempts = args.num("minimize-attempts", 400);
  // Streaming (online, trace-free) verification is the default; --no-streaming
  // re-enables the record-then-batch-check path for A/B comparison.  Both
  // produce identical reports and failure signatures.
  cfg.streaming = !args.has("no-streaming");
  // Optional exhaustive stage: model-check a small configuration of the
  // same protocol variant before the seed fan-out.
  cfg.mcStage = args.has("mc-stage");
  cfg.mcProcs = static_cast<NodeId>(args.num("mc-procs", 2));
  cfg.mcBlocks = static_cast<BlockId>(args.num("mc-blocks", 1));
  cfg.mcMaxStates = args.num("mc-max-states", 400'000);
  // Validate here (UsageError, exit 2) so a typo'd mode never reaches the
  // stage as a SimError (exit 5); the string is forwarded as-is.
  cfg.mcVisited = mc::toString(parseVisitedMode(args.str("mc-visited",
                                                         "exact")));
  cfg.mcMemLimitMb = args.num("mc-mem-limit-mb", 0);
  cfg.mcSpillDir = args.str("mc-spill", "");
  cfg.mcCheckpointDir = args.str("mc-checkpoint", "");
  cfg.mcResumeDir = args.str("mc-resume", "");
  if (!cfg.mcStage &&
      (cfg.mcVisited != "exact" || cfg.mcMemLimitMb != 0 ||
       !cfg.mcSpillDir.empty() || !cfg.mcCheckpointDir.empty() ||
       !cfg.mcResumeDir.empty())) {
    throw UsageError("--mc-visited/--mc-mem-limit-mb/--mc-spill/"
                     "--mc-checkpoint/--mc-resume require --mc-stage");
  }
  // Coverage-guided fuzzing stage; --corpus persists novel inputs across
  // sessions and only makes sense under --fuzz.
  cfg.fuzz = args.has("fuzz");
  cfg.corpusDir = args.str("corpus", "");
  cfg.fuzzStopOnFailure = args.has("fuzz-stop");
  if (!cfg.fuzz && !cfg.corpusDir.empty()) {
    throw UsageError("--corpus requires --fuzz");
  }
  if (!cfg.fuzz && cfg.fuzzStopOnFailure) {
    throw UsageError("--fuzz-stop requires --fuzz");
  }

  std::cout << "campaign: master-seed=" << cfg.masterSeed
            << " seeds=" << cfg.seeds << " workload=" << workloadName
            << (cfg.protocol == ProtocolKind::Directory
                    ? std::string()
                    : std::string(" protocol=") +
                          proto::backendFor(cfg.protocol).name())
            << " mutant=" << toString(cfg.mutant)
            << (cfg.untilCoverage ? " until-coverage" : "")
            << (cfg.minimize ? " minimize" : "")
            << (cfg.streaming ? "" : " no-streaming")
            << (cfg.mcStage ? " mc-stage" : "")
            << (cfg.fuzz ? " fuzz" : "")
            << (cfg.corpusDir.empty() ? std::string()
                                      : " corpus=" + cfg.corpusDir)
            << '\n';

  const campaign::CampaignResult r = campaign::run(cfg);
  std::cout << r.report();

  // Timing and pool behaviour are real but scheduling-dependent; keep them
  // visually separate from the deterministic report above.
  std::cout << "-- timing (non-deterministic) --\n"
            << "jobs: " << cfg.jobs << ", wall: " << r.seconds << " s, "
            << (r.seconds > 0
                    ? static_cast<double>(r.seedsRun) / r.seconds
                    : 0.0)
            << " seeds/s, tasks stolen: " << r.pool.tasksStolen << "/"
            << r.pool.tasksExecuted << '\n';
  r.perf.print(std::cout);
  if (r.mcStage.ran) {
    std::cout << "mc stage: " << r.mcSeconds << " s, "
              << (r.mcSeconds > 0
                      ? static_cast<double>(r.mcStage.states) / r.mcSeconds
                      : 0.0)
              << " states/s\n";
  }
  if (!args.has("quiet")) {
    for (const auto& f : r.failures) {
      if (!f.tracePath.empty()) {
        std::cout << "archived: " << f.tracePath << '\n';
      }
      if (!f.minimizedPath.empty()) {
        std::cout << "minimal reproducer: " << f.minimizedPath << '\n';
      }
    }
  }
  if (cfg.untilCoverage &&
      !r.coverage.transactionCasesComplete(cfg.protocol)) {
    std::cout << "coverage target NOT reached after " << r.seedsRun
              << " seeds\n";
  }
  return r.ok() ? kExitOk : kExitCampaignFailed;
}

/// SIGINT flag for `lcdc serve`: the handler only sets it; the serve
/// supervisor polls it and runs the graceful drain-then-FIN shutdown.
volatile std::sig_atomic_t gStopServe = 0;
extern "C" void onServeSigint(int) { gStopServe = 1; }

void printServeStats(const dsm::ServeResult& r, bool quiet) {
  std::uint64_t msgs = 0;
  std::uint64_t events = 0;
  std::uint64_t beats = 0;
  for (const auto& ns : r.nodeStats) {
    msgs += ns.msgsSent;
    events += ns.eventsEmitted;
    beats += ns.heartbeats;
  }
  std::cout << "serve stats: " << r.opsBound << " ops bound, "
            << (r.seconds > 0
                    ? static_cast<double>(r.opsBound) / r.seconds
                    : 0.0)
            << " ops/s, " << r.seconds << " s\n"
            << "  nodes: " << msgs << " msgs shipped, " << events
            << " events emitted, " << beats << " heartbeats, "
            << r.dialRetries << " dial retries\n"
            << "  certifier: " << r.certStats.eventsMerged
            << " events merged, peak lag " << r.certStats.peakLag
            << ", checker state " << r.certStats.checkerBytes() << " B\n";
  if (!quiet) {
    for (const auto& ns : r.nodeStats) {
      std::cout << "  node " << (&ns - r.nodeStats.data()) << ": ops "
                << ns.opsBound << ", chunks " << ns.chunksDone << ", msgs "
                << ns.msgsSent << "/" << ns.msgsReceived << ", events "
                << ns.eventsEmitted << '\n';
    }
  }
  if (!r.drained) {
    std::cout << "WARNING: shutdown drain timed out — streams were cut with "
                 "work in flight; violations below may be artifacts\n";
  }
}

int cmdServe(const Args& args) {
  dsm::ServeConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(args.num("nodes", 3));
  if (cfg.nodes == 0) throw UsageError("--nodes must be at least 1");
  cfg.port = static_cast<std::uint16_t>(args.num("port", 7400));
  cfg.once = args.has("once");
  cfg.system.numBlocks = static_cast<BlockId>(args.num("blocks", 64));
  cfg.system.proto.wordsPerBlock =
      static_cast<WordIdx>(args.num("words", 4));
  cfg.system.seed = args.num("seed", 1);
  cfg.system.storeBufferDepth =
      static_cast<std::uint32_t>(args.num("store-buffer", 0));
  cfg.system.proto.mutant = parseMutant(args.str("mutant", "none"));
  cfg.heartbeatEveryPumps = args.num("heartbeat-pumps", 16);
  if (cfg.heartbeatEveryPumps == 0) {
    throw UsageError("--heartbeat-pumps must be at least 1");
  }
  cfg.idleTimeoutMs = args.num("idle-timeout-ms", 30'000);
  cfg.drainTimeoutMs = args.num("drain-timeout-ms", 10'000);

  dsm::ServeResult r;
  if (args.has("mem")) {
    // Deterministic loopback: embedded load, single thread, no sockets.
    dsm::MemLoadSpec load;
    load.kind = parseWorkload(args.str("mix", "uniform"));
    load.totalOps = args.num("ops", 10'000);
    load.seed = args.num("load-seed", cfg.system.seed);
    load.chunkSteps = static_cast<std::uint32_t>(args.num("chunk", 1024));
    load.window = static_cast<std::uint32_t>(args.num("window", 2));
    std::cout << "serve (mem loopback): " << cfg.nodes << " nodes, "
              << load.totalOps << " ops, mix=" << args.str("mix", "uniform")
              << ", seed " << load.seed << '\n';
    r = dsm::serveMem(cfg, load);
  } else {
    if (cfg.port == 0) {
      throw UsageError(
          "--port 0 (ephemeral) is for in-process tests; pick a port");
    }
    std::signal(SIGINT, onServeSigint);
    std::cout << "serve: " << cfg.nodes
              << " nodes on 127.0.0.1, certifier on port " << cfg.port
              << ", node i on port " << cfg.port << "+1+i"
              << (cfg.once ? "; exiting after first load session"
                           : "; Ctrl-C for graceful shutdown")
              << std::endl;
    r = dsm::serveTcp(cfg, &gStopServe, nullptr);
  }
  printServeStats(r, args.has("quiet"));
  const int rc = reportAndExit(r.report, args.has("quiet"));
  // An undrained shutdown means the serve could not reach quiescence —
  // surface that even when the (possibly truncated) verdict is clean.
  if (!r.drained && rc == kExitOk) return kExitSimFailed;
  return rc;
}

int cmdLoad(const Args& args) {
  dsm::LoadConfig cfg;
  cfg.port = static_cast<std::uint16_t>(args.num("port", 7400));
  if (cfg.port == 0) throw UsageError("--port must be nonzero");
  cfg.totalOps = args.num("ops", 100'000);
  cfg.clients = static_cast<std::uint32_t>(args.num("clients", 1));
  if (cfg.clients == 0) throw UsageError("--clients must be at least 1");
  cfg.kind = parseWorkload(args.str("mix", "uniform"));
  cfg.seed = args.num("seed", 1);
  cfg.chunkSteps = static_cast<std::uint32_t>(args.num("chunk", 1024));
  if (cfg.chunkSteps == 0) throw UsageError("--chunk must be at least 1");
  cfg.window = static_cast<std::uint32_t>(args.num("window", 2));
  if (cfg.window == 0) throw UsageError("--window must be at least 1");

  const dsm::LoadResult r = dsm::runLoad(cfg);
  std::cout << "load: " << r.opsBound << " ops over " << r.nodes
            << " nodes in " << r.seconds << " s\n"
            << "  throughput: " << r.opsPerSec << " ops/s\n"
            << "  chunk RTT: p50 " << r.p50Ms << " ms, p99 " << r.p99Ms
            << " ms (" << r.chunksDone << " chunks)\n"
            << "  dial retries: " << r.dialRetries << '\n';
  return kExitOk;
}

const std::map<std::string, OptionSpec>& optionSpecs() {
  static const std::map<std::string, OptionSpec> specs = {
      {"run",
       {{"procs", "dirs", "blocks", "ops", "words", "seed", "workload",
         "protocol", "capacity", "mutant", "store-pct", "evict-pct",
         "prefetch", "store-buffer", "model", "min-latency", "max-latency",
         "snoop-delay", "lease", "trace", "trace-format"},
        {"no-putshared", "quiet", "streaming", "no-trace", "perf"}}},
      {"verify", {{"trace", "procs", "model"}, {"partial", "quiet"}}},
      {"mc",
       {{"procs", "blocks", "protocol", "lease", "max-states", "max-depth",
         "jobs", "mutant", "mem-limit-mb", "visited", "bitstate-mb", "spill",
         "checkpoint", "checkpoint-every", "resume"},
        {"no-evictions", "no-putshared", "symmetry", "por", "model-data",
         "replay", "perf"}}},
      {"campaign",
       {{"seeds", "jobs", "master-seed", "workload", "protocol", "mutant",
         "out", "max-events", "max-minimized", "minimize-attempts",
         "mc-procs", "mc-blocks", "mc-max-states", "corpus", "mc-visited",
         "mc-mem-limit-mb", "mc-spill", "mc-checkpoint", "mc-resume"},
        {"until-coverage", "minimize", "quiet", "streaming",
         "no-streaming", "mc-stage", "fuzz", "fuzz-stop"}}},
      {"serve",
       {{"nodes", "port", "blocks", "words", "seed", "store-buffer",
         "mutant", "heartbeat-pumps", "idle-timeout-ms", "drain-timeout-ms",
         "ops", "mix", "load-seed", "chunk", "window"},
        {"once", "mem", "quiet"}}},
      {"load",
       {{"port", "ops", "clients", "mix", "seed", "chunk", "window"}, {}}},
  };
  return specs;
}

void usage(std::ostream& os) {
  os <<
      "usage: lcdc <command> [options]\n\n"
      "commands:\n"
      "  run       simulate + verify\n"
      "            --procs N --dirs D --blocks B --ops K --seed S\n"
      "            --workload uniform|hot|prodcons|migratory|falseshare|\n"
      "                       readmostly|leasechurn\n"
      "            --protocol dir|bus|tardis ('directory' is a deprecated\n"
      "                                       alias for dir)\n"
      "            --lease L (tardis lease length, logical ticks)\n"
      "            --capacity C  --no-putshared\n"
      "            --mutant NAME  --store-pct P --evict-pct P --prefetch PCT\n"
      "            --store-buffer DEPTH (TSO mode)  --model sc|tso\n"
      "            --min-latency T --max-latency T --trace FILE --quiet\n"
      "            --trace-format text|binary (binary: varint codec, ~5x\n"
      "                                        smaller; loadFile autodetects)\n"
      "            --streaming (verify online) --no-trace (O(1) memory)\n"
      "            --perf (events/s + network-queue counters; wall-clock)\n"
      "  verify    re-check a dumped trace\n"
      "            --trace FILE --procs N --model sc|tso [--partial]\n"
      "  mc        exhaustive model checking (small configs!)\n"
      "            --procs N --blocks B --max-states M --max-depth D\n"
      "            --protocol dir|tardis (tardis: bounded-exhaustive,\n"
      "                                   rank-rebased timestamps; --lease L)\n"
      "            --jobs J (parallel wave BFS; results independent of J)\n"
      "            --symmetry (processor-id canonicalization)\n"
      "            --por (ample-set partial-order reduction)\n"
      "            --model-data (track word values; value-coherence check)\n"
      "            --replay (re-execute counterexample in the simulator\n"
      "                      through the streaming Lamport checkers)\n"
      "            --mem-limit-mb M (stop gracefully at a wave boundary\n"
      "                              once tracked memory exceeds M MiB;\n"
      "                              resumable when checkpointing)\n"
      "            --visited exact|compact|bitstate (lossy modes trade a\n"
      "                      reported P(omission) bound for ~12 B/state or\n"
      "                      O(1) bits/state; --bitstate-mb M sizes the\n"
      "                      Bloom array)\n"
      "            --spill DIR (spill frontier waves to segment files;\n"
      "                         exact counts identical to in-RAM engine)\n"
      "            --checkpoint DIR (checkpoint visited + pending wave at\n"
      "                              wave boundaries; implies spilling\n"
      "                              there) --checkpoint-every N\n"
      "            --resume DIR (continue a checkpointed run)\n"
      "            --perf (encode/insert counters, probe histogram,\n"
      "                    bytes/state, spill/checkpoint traffic, peak RSS;\n"
      "                    timings are wall-clock)\n"
      "            --no-evictions --mutant NAME\n"
      "  campaign  parallel seed-fuzzing campaign over the checker suite\n"
      "            --seeds N --jobs J --master-seed S\n"
      "            --protocol dir|bus|tardis (tardis: per-case lease\n"
      "                                       lengths, lease-churn mix)\n"
      "            --workload mixed|uniform|hot|prodcons|migratory|falseshare|\n"
      "                       readmostly|leasechurn\n"
      "            --mutant NAME --until-coverage --minimize\n"
      "            --max-minimized K --minimize-attempts A\n"
      "            --out DIR (archive failing + minimized traces)\n"
      "            --max-events E --quiet --no-streaming (batch-check A/B)\n"
      "            --mc-stage (exhaustively model-check a small config of\n"
      "                        the same variant first)\n"
      "            --mc-procs N --mc-blocks B --mc-max-states M\n"
      "            --mc-visited exact|compact|bitstate --mc-mem-limit-mb M\n"
      "            --mc-spill DIR --mc-checkpoint DIR --mc-resume DIR\n"
      "            --fuzz (coverage-guided: mutate corpus inputs, keep the\n"
      "                    ones with novel coverage; --seeds is the budget)\n"
      "            --corpus DIR (persistent corpus; resumes + accumulates)\n"
      "            --fuzz-stop (stop at the first failing wave)\n"
      "  serve     host a message-passing DSM with live online verification\n"
      "            --nodes N --port P (certifier on P, node i on P+1+i)\n"
      "            --once (exit after the first completed load session)\n"
      "            --blocks B --words W --seed S --store-buffer DEPTH\n"
      "            --mutant NAME (serve a buggy protocol; caught live)\n"
      "            --heartbeat-pumps H --idle-timeout-ms T\n"
      "            --drain-timeout-ms T (SIGINT graceful-drain budget)\n"
      "            --mem (deterministic single-thread loopback, embedded\n"
      "                   load: --ops K --mix NAME --load-seed S\n"
      "                   --chunk STEPS --window W)\n"
      "  load      drive a running serve and measure throughput/latency\n"
      "            --port P --ops M (total, split across nodes)\n"
      "            --clients C --mix uniform|hot|prodcons|migratory|...\n"
      "            --seed S --chunk STEPS --window W\n\n"
      "global: --version prints the tool and wire-format versions\n\n"
      "exit codes: 0 ok, 1 verification violations, 2 usage error,\n"
      "            3 campaign failures, 4 simulation failed, 5 I/O error,\n"
      "            6 mc stopped at --mem-limit-mb (resumable when\n"
      "              --checkpoint was given)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return kExitUsage;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage(std::cout);
    return kExitOk;
  }
  if (cmd == "version" || cmd == "--version") {
    std::cout << "lcdc " << kVersion << " (wire format v"
              << static_cast<unsigned>(dsm::kWireVersion) << ")\n";
    return kExitOk;
  }
  const auto& specs = optionSpecs();
  const auto spec = specs.find(cmd);
  if (spec == specs.end()) {
    std::cerr << "error: unknown command '" << cmd << "'\n\n";
    usage(std::cerr);
    return kExitUsage;
  }
  try {
    const Args args = parse(argc, argv, 2, cmd, spec->second);
    if (cmd == "run") return cmdRun(args);
    if (cmd == "verify") return cmdVerify(args);
    if (cmd == "mc") return cmdMc(args);
    if (cmd == "serve") return cmdServe(args);
    if (cmd == "load") return cmdLoad(args);
    return cmdCampaign(args);
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n(see 'lcdc help')\n";
    return kExitUsage;
  } catch (const ProtocolError& e) {
    std::cerr << "protocol invariant violated: " << e.what() << '\n';
    return kExitSimFailed;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return kExitIo;
  }
}
