// lcdc — command-line driver for the whole reproduction.
//
//   lcdc run     simulate a workload on the directory (or bus) protocol,
//                verify the Section 3 properties, optionally dump the trace
//   lcdc verify  re-verify a previously dumped trace offline
//   lcdc mc      exhaustively model-check a small configuration
//
// Examples:
//   lcdc run --procs 8 --dirs 4 --blocks 64 --ops 5000 --workload hot
//   lcdc run --mutant forward-stale-value --trace /tmp/bug.trace
//   lcdc verify --trace /tmp/bug.trace --procs 6
//   lcdc mc --procs 3 --blocks 1
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bus/bus_system.hpp"
#include "common/expect.hpp"
#include "mc/model_checker.hpp"
#include "sim/system.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

namespace {

using namespace lcdc;

struct Args {
  std::map<std::string, std::string> kv;
  std::vector<std::string> flags;

  [[nodiscard]] std::uint64_t num(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& flag) const {
    return std::find(flags.begin(), flags.end(), flag) != flags.end();
  }
};

Args parse(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw SimError("unexpected argument: " + a);
    }
    a = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.kv[a] = argv[++i];
    } else {
      args.flags.push_back(a);
    }
  }
  return args;
}

Mutant parseMutant(const std::string& name) {
  const Mutant all[] = {Mutant::None,
                        Mutant::SkipInvAckWait,
                        Mutant::StaleDataFromHome,
                        Mutant::IgnoreInvalidation,
                        Mutant::ForwardStaleValue,
                        Mutant::NoBusyNack,
                        Mutant::NoDeadlockDetection};
  for (const Mutant m : all) {
    if (name == toString(m)) return m;
  }
  throw SimError("unknown mutant: " + name);
}

std::vector<workload::Program> makeWorkload(const std::string& name,
                                            const workload::WorkloadConfig& w) {
  if (name == "uniform") return workload::uniformRandom(w);
  if (name == "hot") return workload::hotBlock(w);
  if (name == "prodcons") return workload::producerConsumer(w);
  if (name == "migratory") return workload::migratory(w);
  if (name == "falseshare") return workload::falseSharing(w);
  if (name == "readmostly") return workload::readMostly(w);
  throw SimError("unknown workload: " + name +
                 " (try uniform|hot|prodcons|migratory|falseshare|"
                 "readmostly)");
}

int reportAndExit(const verify::CheckReport& report, bool quiet) {
  std::cout << "verification: " << report.summary() << '\n';
  if (!report.ok() && !quiet) {
    std::size_t shown = 0;
    for (const auto& v : report.violations) {
      std::cout << "  [" << v.check << "] " << v.detail << '\n';
      if (++shown == 10) break;
    }
  }
  return report.ok() ? 0 : 1;
}

int cmdRun(const Args& args) {
  const NodeId procs = static_cast<NodeId>(args.num("procs", 8));
  const std::string workloadName = args.str("workload", "uniform");

  workload::WorkloadConfig w;
  w.numProcessors = procs;
  w.numBlocks = static_cast<BlockId>(args.num("blocks", 64));
  w.wordsPerBlock = static_cast<WordIdx>(args.num("words", 4));
  w.opsPerProcessor = args.num("ops", 2000);
  w.storePercent = static_cast<std::uint32_t>(args.num("store-pct", 35));
  w.evictPercent = static_cast<std::uint32_t>(args.num("evict-pct", 6));
  w.seed = args.num("seed", 1);
  auto programs = makeWorkload(workloadName, w);
  if (args.kv.contains("prefetch")) {
    programs = workload::addPrefetchHints(
        std::move(programs), /*lookahead=*/8,
        static_cast<std::uint32_t>(args.num("prefetch", 25)), w.seed);
  }

  trace::Trace trace;
  std::uint64_t opsBound = 0;
  std::string outcome;
  bool runOk = false;

  if (args.str("protocol", "directory") == "bus") {
    bus::BusConfig cfg;
    cfg.numProcessors = procs;
    cfg.numBlocks = w.numBlocks;
    cfg.wordsPerBlock = w.wordsPerBlock;
    cfg.cacheCapacity = static_cast<std::uint32_t>(args.num("capacity", 0));
    cfg.snoopDelayMax = args.num("snoop-delay", 16);
    cfg.seed = w.seed;
    bus::BusSystem sys(cfg, trace);
    for (NodeId p = 0; p < procs; ++p) sys.setProgram(p, programs[p]);
    const bus::BusRunResult r = sys.run();
    outcome = toString(r.outcome);
    opsBound = r.opsBound;
    runOk = r.ok();
  } else {
    SystemConfig cfg;
    cfg.numProcessors = procs;
    cfg.numDirectories = static_cast<NodeId>(
        args.num("dirs", std::max<NodeId>(1, procs / 2)));
    cfg.numBlocks = w.numBlocks;
    cfg.proto.wordsPerBlock = w.wordsPerBlock;
    cfg.cacheCapacity = static_cast<std::uint32_t>(args.num("capacity", 0));
    cfg.minLatency = args.num("min-latency", 1);
    cfg.maxLatency = args.num("max-latency", 40);
    cfg.seed = w.seed;
    cfg.proto.putSharedEnabled = !args.has("no-putshared");
    cfg.proto.mutant = parseMutant(args.str("mutant", "none"));
    cfg.storeBufferDepth =
        static_cast<std::uint32_t>(args.num("store-buffer", 0));
    sim::System sys(cfg, trace);
    for (NodeId p = 0; p < procs; ++p) sys.setProgram(p, programs[p]);
    const sim::RunResult r = sys.run();
    outcome = toString(r.outcome);
    opsBound = r.opsBound;
    runOk = r.ok();
  }

  std::cout << "simulation: " << outcome << " — " << opsBound
            << " operations, " << trace.serializations().size()
            << " transactions\n";
  if (const auto it = args.kv.find("trace"); it != args.kv.end()) {
    trace::saveFile(trace, it->second);
    std::cout << "trace written to " << it->second << '\n';
  }
  if (!runOk) return 2;
  verify::VerifyConfig vc{procs};
  vc.tso = args.str("model", "sc") == "tso" || args.num("store-buffer", 0) > 0;
  if (vc.tso) std::cout << "(verifying against TSO)\n";
  return reportAndExit(verify::checkAll(trace, vc), args.has("quiet"));
}

int cmdVerify(const Args& args) {
  const auto it = args.kv.find("trace");
  if (it == args.kv.end()) throw SimError("verify requires --trace FILE");
  const trace::Trace trace = trace::loadFile(it->second);
  verify::VerifyConfig cfg{static_cast<NodeId>(args.num("procs", 8))};
  cfg.expectComplete = !args.has("partial");
  std::cout << "loaded " << trace.operations().size() << " operations, "
            << trace.serializations().size() << " transactions\n";
  return reportAndExit(verify::checkAll(trace, cfg), args.has("quiet"));
}

int cmdMc(const Args& args) {
  mc::McConfig cfg;
  cfg.numProcessors = static_cast<NodeId>(args.num("procs", 2));
  cfg.numBlocks = static_cast<BlockId>(args.num("blocks", 1));
  cfg.maxStates = args.num("max-states", 2'000'000);
  cfg.allowEvictions = !args.has("no-evictions");
  cfg.proto.putSharedEnabled = !args.has("no-putshared");
  cfg.proto.mutant = parseMutant(args.str("mutant", "none"));
  const mc::McResult r = mc::explore(cfg);
  std::cout << "states: " << r.statesExplored
            << (r.hitStateLimit ? " (limit hit)" : "")
            << ", transitions: " << r.transitions
            << ", peak frontier: " << r.frontierPeak << '\n';
  if (r.deadlockFound) std::cout << "DEADLOCK state reachable\n";
  for (const auto& v : r.violations) std::cout << "VIOLATION: " << v << '\n';
  return r.ok() && !r.hitStateLimit ? 0 : 1;
}

void usage() {
  std::cout <<
      "usage: lcdc <command> [options]\n\n"
      "commands:\n"
      "  run     simulate + verify\n"
      "          --procs N --dirs D --blocks B --ops K --seed S\n"
      "          --workload uniform|hot|prodcons|migratory|falseshare|readmostly\n"
      "          --protocol directory|bus  --capacity C  --no-putshared\n"
      "          --mutant NAME  --store-pct P --evict-pct P --prefetch PCT\n"
      "          --store-buffer DEPTH (TSO mode)  --model sc|tso\n"
      "          --min-latency T --max-latency T --trace FILE --quiet\n"
      "  verify  re-check a dumped trace\n"
      "          --trace FILE --procs N [--partial]\n"
      "  mc      exhaustive model checking (small configs!)\n"
      "          --procs N --blocks B --max-states M --no-evictions\n"
      "          --mutant NAME\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse(argc, argv, 2);
    if (cmd == "run") return cmdRun(args);
    if (cmd == "verify") return cmdVerify(args);
    if (cmd == "mc") return cmdMc(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
